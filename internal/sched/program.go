package sched

import (
	"fmt"
	"math"
	"sort"

	"taurus/internal/cgra"
	"taurus/internal/fixed"
	mr "taurus/internal/mapreduce"
	"taurus/internal/obs"
)

// DefaultBatch is the packet capacity a Program is compiled with: RunBatch
// sweeps up to this many packets per instruction, amortising dispatch the
// way pipeline.ProcessBatch amortises channel hops.
const DefaultBatch = 16

// Opcode discriminates tape instructions. Each Opcode is a specialised loop
// with the operator and saturation inlined — the per-lane Apply switch the
// interpreter pays is hoisted out entirely.
type Opcode uint8

const (
	OpAdd Opcode = iota
	OpSub
	OpMul
	OpMin
	OpMax
	OpRelu
	OpLeaky
	OpNeg
	OpAbs
	OpSum
	OpRedMin
	OpRedMax
	OpArgMin
	OpArgMax
	OpRequant
	OpScale
	OpLUT
	OpCopy
	// OpDot fuses KMap(MMul) into its sole KReduce(RAdd) consumer: one pass
	// computing sum(sat32(a[i]*b[i])) without materialising the products —
	// the dominant pattern of every dense lowering (DotProduct).
	OpDot
	// OpDotAdd additionally folds the scalar bias add that follows every
	// neuron's dot product: sat32(sat32(dot) + c).
	OpDotAdd
	// OpSqDist fuses KMap(MSub) -> KMap(MMul, d, d) -> KReduce(RAdd): the
	// squared-distance chain of the KMeans lowering.
	OpSqDist
)

// Operand locates one argument's lanes. Constants alias the graph node's
// Const slice (window Off..Off+W) so in-place weight pushes stay visible;
// everything else lives in the program's batch-major arena at Off + j*Stride
// for packet j. The fields are exported for static inspection
// (internal/sched/tapecheck audits every operand against the graph's
// storage); runtime code treats them as immutable after emit.
type Operand struct {
	Const  []int32 // non-nil: constant lanes Const[Off:Off+W], same every packet
	Off    int
	Stride int
	W      int
}

// Instr is one tape entry. Dst/DStride address the output window in the
// arena (DStride is the producing node's full width; for concat pieces the
// copy width W is narrower). Mult and LUT alias the graph node's payloads so
// UpdateWeights pushes take effect without recompiling. Exported for static
// inspection and for fault-injection in verifier tests (Program.Code).
type Instr struct {
	Op      Opcode
	Dst     int
	DStride int
	W       int
	A, B, C Operand
	Mult    *fixed.Multiplier
	LUT     *mr.LUT
}

// Program is a compiled evaluation tape over a validated graph: the
// schedule's bundles linearised into straight-line instructions over a
// preallocated structure-of-arrays arena. Run and RunBatch are bit-exact
// with Graph.Eval and allocate nothing.
//
// Like Evaluator, a Program is tied to the graph it was compiled from and
// sees in-place weight mutations (constants, LUT tables and requantisation
// multipliers are read through the live nodes). It is not safe for
// concurrent use; give each shard its own Program over its own clone.
type Program struct {
	g     *mr.Graph
	sched *Schedule
	code  []Instr
	vals  []int32
	batch int
	ins   []Operand // per declared input
	outs  []Operand // per declared output
}

// Compile plans g on spec and emits the instruction tape with the default
// batch capacity. When a tape verifier is registered (SetVerifier — importing
// internal/sched/tapecheck registers one) the tape must clear it before it is
// returned: a miscompilation is an error here, not a wrong verdict later.
func Compile(g *mr.Graph, spec cgra.GridSpec) (*Program, error) {
	return CompileBatch(g, spec, DefaultBatch)
}

// CompileBatch compiles with an explicit batch capacity (>= 1) and runs the
// registered tape verifier, if any. The verifier's verdict is journalled to
// the process trace (obs.DefaultTracer) as tapecheck.pass / tapecheck.fail,
// so a drift-recovery trace shows the translation gate alongside the push it
// guarded.
func CompileBatch(g *mr.Graph, spec cgra.GridSpec, batch int) (*Program, error) {
	p, err := CompileBatchUnverified(g, spec, batch)
	if err != nil {
		return nil, err
	}
	if verifyHook != nil {
		tr := obs.DefaultTracer()
		if err := verifyHook(p); err != nil {
			tr.Emitf(0, "tapecheck.fail", "graph=%q err=%q", g.Name, err.Error())
			return nil, err
		}
		tr.Emitf(0, "tapecheck.pass", "graph=%q ii=%d", g.Name, p.sched.II)
	}
	return p, nil
}

// CompileUnverified compiles with the default batch capacity, skipping the
// registered tape verifier — the opt-out for tests that inspect or corrupt
// tapes, and for callers that run the verifier themselves to keep the report.
func CompileUnverified(g *mr.Graph, spec cgra.GridSpec) (*Program, error) {
	return CompileBatchUnverified(g, spec, DefaultBatch)
}

// CompileBatchUnverified is CompileBatch without the verifier gate.
func CompileBatchUnverified(g *mr.Graph, spec cgra.GridSpec, batch int) (*Program, error) {
	if batch < 1 {
		return nil, fmt.Errorf("sched: batch capacity %d", batch)
	}
	s, err := Plan(g, spec)
	if err != nil {
		return nil, err
	}
	p := &Program{g: g, sched: s, batch: batch}
	if err := p.emit(); err != nil {
		return nil, err
	}
	return p, nil
}

// Schedule returns the bundle schedule the tape was linearised from.
func (p *Program) Schedule() *Schedule { return p.sched }

// Graph returns the graph this program evaluates.
func (p *Program) Graph() *mr.Graph { return p.g }

// MaxBatch returns the batch capacity RunBatch accepts.
func (p *Program) MaxBatch() int { return p.batch }

// In returns packet 0's buffer for the i-th declared input (the single-
// packet Run path); the caller writes feature codes into it.
func (p *Program) In(i int) []int32 { return p.InAt(i, 0) }

// InAt returns batch slot j's buffer for the i-th declared input.
func (p *Program) InAt(i, j int) []int32 {
	o := p.ins[i]
	base := o.Off + j*o.Stride
	return p.vals[base : base+o.W]
}

// Out returns packet 0's i-th declared output after Run.
func (p *Program) Out(i int) []int32 { return p.OutAt(i, 0) }

// OutAt returns batch slot j's i-th declared output after RunBatch.
func (p *Program) OutAt(i, j int) []int32 {
	o := p.outs[i]
	if o.Const != nil {
		return o.Const[o.Off : o.Off+o.W]
	}
	base := o.Off + j*o.Stride
	return p.vals[base : base+o.W]
}

// emit lays out the arena and linearises the schedule into the tape. Three
// peephole passes cut the instruction count before emission: dot/sqdist
// chains fuse into their reductions, a neuron's scalar bias add folds into
// its dot product, and values consumed only by a concat are produced
// directly into the concat's window (copy elimination).
func (p *Program) emit() error {
	g, s := p.g, p.sched

	// Consumer counts decide fusion legality: a node folded into a fused
	// instruction must have exactly the fusing consumer and must not be a
	// declared output (outputs count as a use).
	uses := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			uses[a]++
		}
	}
	for _, o := range g.Outputs {
		uses[o]++
	}
	fused := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind != mr.KReduce || n.Reduce != mr.RAdd {
			continue
		}
		m := g.Node(n.Args[0])
		if m.Kind != mr.KMap || m.Map != mr.MMul || uses[m.ID] != 1 {
			continue
		}
		fused[m.ID] = true
		if m.Args[0] == m.Args[1] {
			if d := g.Node(m.Args[0]); d.Kind == mr.KMap && d.Map == mr.MSub && uses[d.ID] == 2 {
				fused[d.ID] = true
			}
		}
	}
	// Bias folding: MAdd(reduce, scalar) where the reduce is a
	// single-consumer fused dot. The add is emitted as one OpDotAdd at the
	// MAdd node; the reduce disappears (saturation order is preserved:
	// sat32(sat32(sum) + bias), and int32 addition commutes bit-exactly).
	biasDot := make([]mr.NodeID, len(g.Nodes)) // MAdd id -> dot-reduce id
	for i := range biasDot {
		biasDot[i] = -1
	}
	for _, n := range g.Nodes {
		if n.Kind != mr.KMap || n.Map != mr.MAdd || n.Width != 1 {
			continue
		}
		for _, a := range n.Args {
			r := g.Node(a)
			if r.Kind != mr.KReduce || r.Reduce != mr.RAdd || uses[r.ID] != 1 {
				continue
			}
			m := g.Node(r.Args[0])
			if !fused[m.ID] || (m.Args[0] == m.Args[1] && fused[m.Args[0]]) {
				continue // plain sum or sqdist chain: not a dot
			}
			biasDot[n.ID] = r.ID
			fused[r.ID] = true
			break
		}
	}

	// Copy elimination: a value whose only consumer is one concat slot is
	// produced straight into the concat's arena window.
	type sinkTo struct {
		target mr.NodeID
		lane   int
	}
	sink := make([]sinkTo, len(g.Nodes))
	for i := range sink {
		sink[i].target = -1
	}
	for _, n := range g.Nodes {
		if n.Kind != mr.KConcat {
			continue
		}
		at := 0
		for _, a := range n.Args {
			an := g.Node(a)
			switch an.Kind {
			case mr.KInput, mr.KConst, mr.KSlice:
				// caller-filled or not arena-backed: keep the copy
			default:
				if uses[a] == 1 && !fused[a] {
					sink[a] = sinkTo{target: n.ID, lane: at}
				}
			}
			at += an.Width
		}
	}

	// Arena layout: one batch-major block per value-producing node that is
	// neither fused away nor sunk. Consts live in the graph; slices and
	// sunk values resolve into another node's window.
	loc := make([]Operand, len(g.Nodes))
	resolved := make([]bool, len(g.Nodes))
	off := 0
	for _, n := range g.Nodes {
		switch {
		case n.Kind == mr.KConst:
			loc[n.ID] = Operand{Const: n.Const, W: n.Width}
			resolved[n.ID] = true
		case n.Kind == mr.KSlice, fused[n.ID], sink[n.ID].target >= 0:
			// resolved lazily below
		default:
			loc[n.ID] = Operand{Off: off, Stride: n.Width, W: n.Width}
			resolved[n.ID] = true
			off += p.batch * n.Width
		}
	}
	p.vals = make([]int32, off)
	var resolve func(id mr.NodeID) Operand
	resolve = func(id mr.NodeID) Operand {
		if resolved[id] {
			return loc[id]
		}
		n := g.Node(id)
		var o Operand
		if n.Kind == mr.KSlice {
			o = resolve(n.Args[0])
			o.Off += n.Start
		} else {
			o = resolve(sink[id].target)
			o.Off += sink[id].lane
		}
		o.W = n.Width
		loc[id], resolved[id] = o, true
		return o
	}

	// Linearise bundle by bundle (ties broken by node ID, which is
	// topological): the tape executes the schedule in issue order.
	order := make([]mr.NodeID, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		order = append(order, n.ID)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if s.Start[a] != s.Start[b] {
			return s.Start[a] < s.Start[b]
		}
		return a < b
	})

	for _, id := range order {
		n := g.Node(id)
		if fused[id] {
			continue
		}
		switch n.Kind {
		case mr.KInput, mr.KConst, mr.KSlice:
			continue // caller-filled, resident, or pure routing
		}
		d := resolve(id)
		ins := Instr{Dst: d.Off, DStride: d.Stride, W: n.Width}
		switch n.Kind {
		case mr.KMap:
			if r := biasDot[id]; r >= 0 {
				m := g.Node(g.Node(r).Args[0])
				bias := n.Args[0]
				if bias == r {
					bias = n.Args[1]
				}
				ins.Op = OpDotAdd
				ins.A, ins.B, ins.C = resolve(m.Args[0]), resolve(m.Args[1]), resolve(bias)
				break
			}
			ins.Op = [...]Opcode{OpAdd, OpSub, OpMul, OpMin, OpMax}[n.Map]
			ins.A, ins.B = resolve(n.Args[0]), resolve(n.Args[1])
		case mr.KUnary:
			ins.Op = [...]Opcode{OpRelu, OpLeaky, OpNeg, OpAbs}[n.Unary]
			ins.A = resolve(n.Args[0])
		case mr.KReduce:
			m := g.Node(n.Args[0])
			switch {
			case n.Reduce == mr.RAdd && fused[m.ID] && m.Args[0] == m.Args[1] && fused[m.Args[0]]:
				d := g.Node(m.Args[0])
				ins.Op, ins.A, ins.B = OpSqDist, resolve(d.Args[0]), resolve(d.Args[1])
			case n.Reduce == mr.RAdd && fused[m.ID]:
				ins.Op, ins.A, ins.B = OpDot, resolve(m.Args[0]), resolve(m.Args[1])
			default:
				ins.Op = [...]Opcode{OpSum, OpRedMin, OpRedMax, OpArgMin, OpArgMax}[n.Reduce]
				ins.A = resolve(n.Args[0])
			}
		case mr.KConcat:
			at := 0
			for _, a := range n.Args {
				src := resolve(a)
				if sink[a].target == id {
					at += src.W
					continue // produced in place, no copy
				}
				p.code = append(p.code, Instr{
					Op: OpCopy, Dst: d.Off + at, DStride: d.Stride, W: src.W, A: src,
				})
				at += src.W
			}
			continue
		case mr.KRequant:
			ins.Op, ins.A, ins.Mult = OpRequant, resolve(n.Args[0]), &n.Mult
		case mr.KScale:
			ins.Op, ins.A, ins.Mult = OpScale, resolve(n.Args[0]), &n.Mult
		case mr.KLUT:
			ins.Op, ins.A, ins.LUT = OpLUT, resolve(n.Args[0]), n.LUT
		default:
			return fmt.Errorf("sched: node %d has unknown kind %v", id, n.Kind)
		}
		p.code = append(p.code, ins)
	}

	p.ins = make([]Operand, len(g.Inputs))
	for i, id := range g.Inputs {
		p.ins[i] = resolve(id)
	}
	p.outs = make([]Operand, len(g.Outputs))
	for i, id := range g.Outputs {
		p.outs[i] = resolve(id)
	}
	return nil
}

// lanes resolves an Operand's window for batch slot j.
func (p *Program) lanes(o Operand, j int) []int32 {
	if o.Const != nil {
		return o.Const[o.Off : o.Off+o.W]
	}
	base := o.Off + j*o.Stride
	return p.vals[base : base+o.W]
}

// sat32 clamps a wide intermediate to int32, identically to
// fixed.Fix32.Saturate.
func sat32(v int64) int32 {
	if v < math.MinInt32 {
		return math.MinInt32
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(v)
}

// Run evaluates batch slot 0: the per-packet hot path.
//
// hotpath: zero-alloc
func (p *Program) Run() { p.RunBatch(1) }

// RunBatch evaluates batch slots 0..n-1 in one tape sweep. The caller fills
// InAt(i, j) for each slot beforehand and reads OutAt(i, j) after. It
// allocates nothing and is bit-exact with Graph.Eval per slot.
//
// hotpath: zero-alloc
func (p *Program) RunBatch(n int) {
	if n < 1 || n > p.batch {
		//hotpathcheck:allow — misuse guard; panics before the sweep, never taken on the steady path
		panic(fmt.Sprintf("sched: RunBatch(%d) outside capacity %d", n, p.batch))
	}
	for ci := range p.code {
		ins := &p.code[ci]
		switch ins.Op {
		case OpAdd:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				if ins.B.W == 1 {
					bv := int64(p.lanes(ins.B, j)[0])
					for i := range out {
						out[i] = sat32(int64(a[i]) + bv)
					}
				} else {
					b := p.lanes(ins.B, j)
					for i := range out {
						out[i] = sat32(int64(a[i]) + int64(b[i]))
					}
				}
			}
		case OpSub:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				if ins.B.W == 1 {
					bv := int64(p.lanes(ins.B, j)[0])
					for i := range out {
						out[i] = sat32(int64(a[i]) - bv)
					}
				} else {
					b := p.lanes(ins.B, j)
					for i := range out {
						out[i] = sat32(int64(a[i]) - int64(b[i]))
					}
				}
			}
		case OpMul:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				if ins.B.W == 1 {
					bv := int64(p.lanes(ins.B, j)[0])
					for i := range out {
						out[i] = sat32(int64(a[i]) * bv)
					}
				} else {
					b := p.lanes(ins.B, j)
					for i := range out {
						out[i] = sat32(int64(a[i]) * int64(b[i]))
					}
				}
			}
		case OpMin:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				if ins.B.W == 1 {
					bv := p.lanes(ins.B, j)[0]
					for i := range out {
						if v := a[i]; v < bv {
							out[i] = v
						} else {
							out[i] = bv
						}
					}
				} else {
					b := p.lanes(ins.B, j)
					for i := range out {
						if v, bv := a[i], b[i]; v < bv {
							out[i] = v
						} else {
							out[i] = bv
						}
					}
				}
			}
		case OpMax:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				if ins.B.W == 1 {
					bv := p.lanes(ins.B, j)[0]
					for i := range out {
						if v := a[i]; v > bv {
							out[i] = v
						} else {
							out[i] = bv
						}
					}
				} else {
					b := p.lanes(ins.B, j)
					for i := range out {
						if v, bv := a[i], b[i]; v > bv {
							out[i] = v
						} else {
							out[i] = bv
						}
					}
				}
			}
		case OpRelu:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				for i := range out {
					if v := a[i]; v > 0 {
						out[i] = v
					} else {
						out[i] = 0
					}
				}
			}
		case OpLeaky:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				for i := range out {
					if v := a[i]; v < 0 {
						out[i] = int32((int64(v)*82 + 4096) >> 13)
					} else {
						out[i] = v
					}
				}
			}
		case OpNeg:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				for i := range out {
					out[i] = sat32(-int64(a[i]))
				}
			}
		case OpAbs:
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				for i := range out {
					if v := a[i]; v < 0 {
						out[i] = sat32(-int64(v))
					} else {
						out[i] = v
					}
				}
			}
		case OpSum:
			for j := 0; j < n; j++ {
				a := p.lanes(ins.A, j)
				var s int64
				for _, v := range a {
					s += int64(v)
				}
				p.dstLanes(ins, j)[0] = sat32(s)
			}
		case OpRedMin, OpArgMin:
			for j := 0; j < n; j++ {
				a := p.lanes(ins.A, j)
				best := 0
				for i, v := range a {
					if v < a[best] {
						best = i
					}
				}
				if ins.Op == OpArgMin {
					p.dstLanes(ins, j)[0] = int32(best)
				} else {
					p.dstLanes(ins, j)[0] = a[best]
				}
			}
		case OpRedMax, OpArgMax:
			for j := 0; j < n; j++ {
				a := p.lanes(ins.A, j)
				best := 0
				for i, v := range a {
					if v > a[best] {
						best = i
					}
				}
				if ins.Op == OpArgMax {
					p.dstLanes(ins, j)[0] = int32(best)
				} else {
					p.dstLanes(ins, j)[0] = a[best]
				}
			}
		case OpRequant:
			m := *ins.Mult // read once per sweep; aliases the live node
			if m.Shift >= 63 {
				p.fill(ins, n, 0) // degenerate multiplier rounds to zero
				continue
			}
			m0, half, sh := int64(m.M0), int64(1)<<(m.Shift-1), uint(m.Shift)
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				for i := range out {
					v := int32((int64(a[i])*m0 + half) >> sh)
					if v > 127 {
						v = 127
					} else if v < -128 {
						v = -128
					}
					out[i] = v
				}
			}
		case OpScale:
			m := *ins.Mult
			if m.Shift >= 63 {
				p.fill(ins, n, 0)
				continue
			}
			m0, half, sh := int64(m.M0), int64(1)<<(m.Shift-1), uint(m.Shift)
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				for i := range out {
					out[i] = int32((int64(a[i])*m0 + half) >> sh)
				}
			}
		case OpLUT:
			lut := ins.LUT
			m := lut.Mult
			for j := 0; j < n; j++ {
				a, out := p.lanes(ins.A, j), p.dstLanes(ins, j)
				for i := range out {
					idx := m.Apply(a[i])
					if idx < -mr.LUTSize/2 {
						idx = -mr.LUTSize / 2
					} else if idx > mr.LUTSize/2-1 {
						idx = mr.LUTSize/2 - 1
					}
					out[i] = int32(lut.Table[idx+mr.LUTSize/2])
				}
			}
		case OpCopy:
			for j := 0; j < n; j++ {
				copy(p.dstLanes(ins, j), p.lanes(ins.A, j))
			}
		case OpDot:
			for j := 0; j < n; j++ {
				a := p.lanes(ins.A, j)
				var s int64
				if ins.B.W == 1 {
					bv := int64(p.lanes(ins.B, j)[0])
					for _, v := range a {
						s += int64(sat32(int64(v) * bv))
					}
				} else {
					b := p.lanes(ins.B, j)
					for i, v := range a {
						s += int64(sat32(int64(v) * int64(b[i])))
					}
				}
				p.dstLanes(ins, j)[0] = sat32(s)
			}
		case OpDotAdd:
			for j := 0; j < n; j++ {
				a := p.lanes(ins.A, j)
				var s int64
				if ins.B.W == 1 {
					bv := int64(p.lanes(ins.B, j)[0])
					for _, v := range a {
						s += int64(sat32(int64(v) * bv))
					}
				} else {
					b := p.lanes(ins.B, j)
					for i, v := range a {
						s += int64(sat32(int64(v) * int64(b[i])))
					}
				}
				cv := int64(p.lanes(ins.C, j)[0])
				p.dstLanes(ins, j)[0] = sat32(int64(sat32(s)) + cv)
			}
		case OpSqDist:
			for j := 0; j < n; j++ {
				a := p.lanes(ins.A, j)
				var s int64
				if ins.B.W == 1 {
					bv := int64(p.lanes(ins.B, j)[0])
					for _, v := range a {
						d := int64(sat32(int64(v) - bv))
						s += int64(sat32(d * d))
					}
				} else {
					b := p.lanes(ins.B, j)
					for i, v := range a {
						d := int64(sat32(int64(v) - int64(b[i])))
						s += int64(sat32(d * d))
					}
				}
				p.dstLanes(ins, j)[0] = sat32(s)
			}
		}
	}
}

// dst resolves an instruction's output window for batch slot j.
func (p *Program) dstLanes(ins *Instr, j int) []int32 {
	base := ins.Dst + j*ins.DStride
	return p.vals[base : base+ins.W]
}

// fill writes v across the instruction's output for slots 0..n-1.
func (p *Program) fill(ins *Instr, n int, v int32) {
	for j := 0; j < n; j++ {
		out := p.dstLanes(ins, j)
		for i := range out {
			out[i] = v
		}
	}
}
