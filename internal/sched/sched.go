// Package sched compiles a validated MapReduce graph for software execution
// at hardware-like cost: a VLIW-style list schedule over the CGRA's issue
// resources, and a flat instruction tape (Program) that replaces the
// interpreter's per-node switch dispatch with fused straight-line loops.
//
// The schedule is the measured counterpart of graphcheck's depth-only
// estimate (Report.CriticalPathCycles / Report.EstII): graphcheck bounds the
// critical path ignoring resource contention, while Plan packs every compute
// node into per-cycle issue bundles under the grid's CU/MU capacity and
// reports the initiation interval the packed schedule actually sustains.
// Device, pipeline.ServiceModel and the netqueue simulator consume this II —
// the service-time model is re-derived from the real schedule, not the
// estimate.
package sched

import (
	"fmt"
	"strings"

	"taurus/internal/cgra"
	mr "taurus/internal/mapreduce"
)

// Schedule is a resource-constrained list schedule of one graph on one grid:
// every compute node is assigned an issue cycle such that its arguments have
// finished and no cycle oversubscribes the grid's issue capacity (one vector
// op per CU per cycle; one banked table read per MU per cycle).
type Schedule struct {
	Spec cgra.GridSpec

	graph *mr.Graph

	// Bundles[t] lists the nodes that begin issuing at cycle t — one VLIW
	// instruction word per fabric cycle. Free nodes (inputs, consts, wires:
	// concat/slice/scale) occupy no bundle slot.
	Bundles [][]mr.NodeID

	// Start and Done give each node's issue cycle and completion cycle
	// (value available to consumers). Free nodes complete at their ready
	// cycle.
	Start, Done []int

	// Depth is the schedule makespan in cycles: the completion cycle of the
	// last node. Compare with graphcheck's CriticalPathCycles, which bounds
	// the same quantity without resource constraints.
	Depth int

	// II is the measured initiation interval: the steady-state cycles
	// between successive packets entering the schedule, limited by the
	// busiest single unit (a node's back-to-back lane chunks), total CU
	// issue pressure, and MU bank bandwidth (weights and tables are
	// streamed from MUs every packet).
	II int

	// CUIssues and MUReads are the per-packet resource totals behind II:
	// CU issue slots consumed and MU lane reads (consts + LUT lookups).
	CUIssues int
	MUReads  int

	// MaxBundle is the peak number of simultaneously-issuing CU nodes in
	// any cycle — the widest VLIW bundle the schedule needs.
	MaxBundle int
}

// log2Ceil returns ceil(log2(n)) for n >= 1.
func log2Ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// chainWidth is a node's lane demand (its argument's width for reductions),
// mirroring graphcheck's accounting.
func chainWidth(g *mr.Graph, n *mr.Node) int {
	switch n.Kind {
	case mr.KInput, mr.KConst, mr.KConcat, mr.KSlice:
		return 0
	}
	w := n.Width
	if n.Kind == mr.KReduce {
		if aw := g.Node(n.Args[0]).Width; aw > w {
			w = aw
		}
	}
	return w
}

// nodeCost returns a node's issue occupancy and pipeline latency on its
// unit. issues is the number of consecutive cycles the node holds one unit
// (lane chunks issue back-to-back); lat is the cycle count until the value
// reaches consumers. Free nodes (wires, storage, and KScale, which fuses
// into its consumer's pipeline for free) return (0, 0), matching
// graphcheck's depth costs.
func nodeCost(g *mr.Graph, n *mr.Node, spec cgra.GridSpec) (issues, lat int, onMU bool) {
	switch n.Kind {
	case mr.KMap, mr.KUnary, mr.KRequant:
		iters := (chainWidth(g, n) + spec.Lanes - 1) / spec.Lanes
		return iters, 1 + (iters - 1), false
	case mr.KReduce:
		w := g.Node(n.Args[0]).Width
		iters := (w + spec.Lanes - 1) / spec.Lanes
		if w > spec.Lanes {
			w = spec.Lanes
		}
		return iters, log2Ceil(w) + (iters - 1), false
	case mr.KLUT:
		reads := (n.Width + cgra.MUBanks - 1) / cgra.MUBanks
		return reads, cgra.MUAccessCycles + (reads - 1), true
	default: // KInput, KConst, KConcat, KSlice, KScale
		return 0, 0, false
	}
}

// Plan list-schedules g's compute nodes onto spec's issue resources. Nodes
// are visited in topological order (the graph's node order) and greedily
// placed in the earliest cycle where their arguments have completed and
// every cycle of their issue window has a free unit.
func Plan(g *mr.Graph, spec cgra.GridSpec) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cus, mus := spec.CUCount(), spec.MUCount()
	if cus == 0 {
		return nil, fmt.Errorf("sched: grid %dx%d has no compute units", spec.Rows, spec.Cols)
	}

	s := &Schedule{
		Spec:  spec,
		graph: g,
		Start: make([]int, len(g.Nodes)),
		Done:  make([]int, len(g.Nodes)),
	}
	var cuUsed, muUsed []int // per-cycle issue counters
	use := func(used []int, t, issues, capacity int) ([]int, int) {
		// Find the earliest start >= t whose whole window [start,
		// start+issues) has a free slot each cycle, then claim it.
	retry:
		for {
			for c := t; c < t+issues; c++ {
				for c >= len(used) {
					used = append(used, 0)
				}
				if used[c] >= capacity {
					t = c + 1
					continue retry
				}
			}
			break
		}
		for c := t; c < t+issues; c++ {
			used[c]++
		}
		return used, t
	}

	maxNodeII := 1
	for _, n := range g.Nodes {
		ready := 0
		for _, a := range n.Args {
			if s.Done[a] > ready {
				ready = s.Done[a]
			}
		}
		issues, lat, onMU := nodeCost(g, n, spec)
		if n.Kind == mr.KConst {
			s.MUReads += n.Width // weights stream from MU banks per packet
		}
		if issues == 0 {
			s.Start[n.ID], s.Done[n.ID] = ready, ready
			continue
		}
		var t int
		if onMU {
			if mus == 0 {
				return nil, fmt.Errorf("sched: node %d needs an MU, grid %dx%d (ratio %d:1) has none",
					n.ID, spec.Rows, spec.Cols, spec.CUMURatio)
			}
			muUsed, t = use(muUsed, ready, issues, mus)
			s.MUReads += n.Width
		} else {
			cuUsed, t = use(cuUsed, ready, issues, cus)
			s.CUIssues += issues
		}
		s.Start[n.ID], s.Done[n.ID] = t, t+lat
		if issues > maxNodeII {
			maxNodeII = issues
		}
		for t >= len(s.Bundles) {
			s.Bundles = append(s.Bundles, nil)
		}
		s.Bundles[t] = append(s.Bundles[t], n.ID)
		if s.Done[n.ID] > s.Depth {
			s.Depth = s.Done[n.ID]
		}
	}
	for _, c := range cuUsed {
		if c > s.MaxBundle {
			s.MaxBundle = c
		}
	}

	// Steady-state initiation interval: the busiest unit bounds how soon
	// the next packet's copy of its op can issue; aggregate CU issue and MU
	// bank bandwidth bound the rest (the ResMII of modulo scheduling).
	s.II = maxNodeII
	if r := (s.CUIssues + cus - 1) / cus; r > s.II {
		s.II = r
	}
	if s.MUReads > 0 {
		if mus == 0 {
			return nil, fmt.Errorf("sched: graph reads MU storage, grid %dx%d (ratio %d:1) has no MUs",
				spec.Rows, spec.Cols, spec.CUMURatio)
		}
		if r := (s.MUReads + mus*cgra.MUBanks - 1) / (mus * cgra.MUBanks); r > s.II {
			s.II = r
		}
	}
	return s, nil
}

// Occupancy is the fill fraction of the schedule's CU bundles: issued slots
// over Depth cycles of the widest bundle observed. 1.0 means a perfectly
// rectangular schedule; low values mean the critical path leaves most
// bundles near-empty.
func (s *Schedule) Occupancy() float64 {
	if s.Depth == 0 || s.MaxBundle == 0 {
		return 0
	}
	return float64(s.CUIssues) / float64(s.Depth*s.MaxBundle)
}

// String renders the bundle schedule, one line per issuing cycle:
//
//	t2: n5(map/mul) n7(map/mul)
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule: depth %d, II %d, %d CU issues (peak bundle %d, occupancy %.0f%%)\n",
		s.Depth, s.II, s.CUIssues, s.MaxBundle, 100*s.Occupancy())
	for t, bundle := range s.Bundles {
		if len(bundle) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  t%d:", t)
		for _, id := range bundle {
			fmt.Fprintf(&b, " n%d(%s)", id, bundleOpName(s, id))
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// Graph returns the graph this schedule was planned for.
func (s *Schedule) Graph() *mr.Graph { return s.graph }

// bundleOpName is the display label of a scheduled node.
func bundleOpName(s *Schedule, id mr.NodeID) string {
	n := s.graph.Node(id)
	switch n.Kind {
	case mr.KMap:
		return "map/" + n.Map.String()
	case mr.KUnary:
		return n.Unary.String()
	case mr.KReduce:
		return "reduce/" + n.Reduce.String()
	default:
		return n.Kind.String()
	}
}
