package sched_test

import (
	"math/rand"
	"testing"

	"taurus/internal/cgra"
	mr "taurus/internal/mapreduce"
	"taurus/internal/sched"
)

// benchGraph picks the DNN lowering: the dense dot-product chains are the
// shape the fused tape is built for and what the device serves per packet.
func benchGraph(b *testing.B) *mr.Graph {
	return modelGraphs(b)["dnn"]
}

// BenchmarkEval compares the interpreter against the compiled tape on the
// same graph and inputs: interp is Evaluator.Eval (the previous device hot
// path), compiled is Program.Run, batch is Program.RunBatch amortised per
// packet. The compiled paths must report 0 allocs/op.
func BenchmarkEval(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(3))
	codes := make([]int32, g.Node(g.Inputs[0]).Width)
	for i := range codes {
		codes[i] = int32(int8(rng.Intn(256)))
	}

	b.Run("interp", func(b *testing.B) {
		ev, err := mr.NewEvaluator(g)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(ev.Input(0), codes)
			ev.Eval()
		}
	})
	b.Run("compiled", func(b *testing.B) {
		p, err := sched.Compile(g, cgra.DefaultGrid())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(p.In(0), codes)
			p.Run()
		}
	})
	b.Run("batch", func(b *testing.B) {
		p, err := sched.Compile(g, cgra.DefaultGrid())
		if err != nil {
			b.Fatal(err)
		}
		batch := p.MaxBatch()
		for j := 0; j < batch; j++ {
			copy(p.InAt(0, j), codes)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i += batch {
			p.RunBatch(batch)
		}
	})
}
