package sched

import (
	"taurus/internal/cgra"
	mr "taurus/internal/mapreduce"
)

// This file is the static-inspection surface of a compiled Program: enough
// of the tape's internals to let a separate package (internal/sched/
// tapecheck) re-derive what the tape computes without re-running it, plus
// the verifier hook Compile gates on. Nothing here is used by the hot path.

// verifyHook, when non-nil, must clear every Compile/CompileBatch result
// before it is returned. Registered via SetVerifier.
var verifyHook func(*Program) error

// SetVerifier installs the tape verifier Compile and CompileBatch gate on,
// returning the previously installed one (nil if none) so tests can swap a
// failing verifier in and restore it. Importing internal/sched/tapecheck
// registers the real verifier; passing nil disables the gate.
//
// Registration is expected at init time (or around a single test); the hook
// is read without synchronisation on every compile.
func SetVerifier(f func(*Program) error) (prev func(*Program) error) {
	prev = verifyHook
	verifyHook = f
	return prev
}

// Code returns the live instruction tape. The slice aliases the program's
// own storage: static analyses read it in place, and verifier tests mutate
// entries to inject the miscompilations tapecheck must catch. Runtime
// callers must treat it as read-only.
func (p *Program) Code() []Instr { return p.code }

// ArenaSize returns the length of the batch-major value arena, in lanes
// (int32 cells). Every non-constant Operand window must resolve inside it.
func (p *Program) ArenaSize() int { return len(p.vals) }

// InputOperand returns the arena window of the i-th declared graph input.
func (p *Program) InputOperand(i int) Operand { return p.ins[i] }

// OutputOperand returns the window of the i-th declared graph output
// (arena-backed, or constant-backed when the output is a KConst).
func (p *Program) OutputOperand(i int) Operand { return p.outs[i] }

// NodeCost exposes the scheduler's per-node cost model: how many issue slots
// the node claims, its result latency, and whether it issues on a memory
// unit rather than a compute unit. tapecheck re-runs it to prove a schedule's
// bundles stay within the capacities the scheduler claimed.
func NodeCost(g *mr.Graph, n *mr.Node, spec cgra.GridSpec) (issues, lat int, onMU bool) {
	return nodeCost(g, n, spec)
}

// String names the opcode, mnemonic-style, for findings and reports.
func (op Opcode) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpRelu:
		return "relu"
	case OpLeaky:
		return "leaky"
	case OpNeg:
		return "neg"
	case OpAbs:
		return "abs"
	case OpSum:
		return "sum"
	case OpRedMin:
		return "redmin"
	case OpRedMax:
		return "redmax"
	case OpArgMin:
		return "argmin"
	case OpArgMax:
		return "argmax"
	case OpRequant:
		return "requant"
	case OpScale:
		return "scale"
	case OpLUT:
		return "lut"
	case OpCopy:
		return "copy"
	case OpDot:
		return "dot"
	case OpDotAdd:
		return "dotadd"
	case OpSqDist:
		return "sqdist"
	default:
		return "op?"
	}
}
