// Package hwmodel is the analytic area/power model standing in for the
// paper's ASIC synthesis flow (FreePDK15 + CACTI 7.0, §5.1.1). All anchor
// constants are the paper's published numbers; chip-level results (Table 5,
// Figures 9 and 10, §5.1.4) are derived from these anchors plus unit counts
// computed by the real compiler.
package hwmodel

import (
	"fmt"

	"taurus/internal/fixed"
)

// Paper anchor constants (§5.1.1, Table 4, Table 5 and footnote 5).
const (
	// ClockGHz is the fabric clock: §4 "guarantee a 1 GHz clock frequency".
	ClockGHz = 1.0

	// FUAreaFix8UM2 is the per-FU area at the target design point
	// (16 lanes, 4 stages), Table 4.
	FUAreaFix8UM2 = 670.0
	// FUPowerFix8UW is the per-FU power at the target design point, Table 4.
	FUPowerFix8UW = 456.0

	// CUAreaMM2 is the full 16x4 fix8 CU including routing (§5.1.1:
	// "0.044 mm² (680 µm² per FU, on average)").
	CUAreaMM2 = 0.044
	// MUAreaMM2 is a memory unit (16 banks x 1024 entries) including
	// routing (§5.1.1).
	MUAreaMM2 = 0.029

	// MUBanks and MUEntries give each MU's capacity: 16 banks x 1024
	// 8-bit entries (§5.1.1).
	MUBanks   = 16
	MUEntries = 1024

	// GridRows x GridCols units with CUMURatio CUs per MU: the final ASIC
	// provisions "a 12 x 10 grid with a 3:1 ratio of CUs to MUs, taking
	// 4.8 mm²".
	GridRows  = 12
	GridCols  = 10
	CUMURatio = 3

	// ChipAreaMM2 and ChipPowerW describe the host switch ASIC: a 500 mm²
	// chip with 4 reconfigurable pipelines drawing ~270 W (Table 5 caption).
	ChipAreaMM2 = 500.0
	ChipPowerW  = 270.0
	Pipelines   = 4

	// MATsPerPipeline and MATAreaFraction: "a switch with four
	// reconfigurable pipelines having 32 MATs each, 50% of the chip area is
	// taken up by the MATs" (§5.1.1).
	MATsPerPipeline = 32
	MATAreaFraction = 0.5
)

// MATAreaMM2 returns the area of a single MAT stage under the 50%-of-chip
// accounting (≈1.95 mm²).
func MATAreaMM2() float64 {
	return ChipAreaMM2 * MATAreaFraction / float64(Pipelines*MATsPerPipeline)
}

// precisionAreaScale returns the Table 4 area ratio relative to fix8.
func precisionAreaScale(p fixed.Precision) float64 {
	switch p {
	case fixed.Fix8:
		return 1
	case fixed.Fix16:
		return 1338.0 / 670.0
	case fixed.Fix32:
		return 2949.0 / 670.0
	default:
		panic(fmt.Sprintf("hwmodel: unsupported precision %v", p))
	}
}

// precisionPowerScale returns the Table 4 power ratio relative to fix8.
func precisionPowerScale(p fixed.Precision) float64 {
	switch p {
	case fixed.Fix8:
		return 1
	case fixed.Fix16:
		return 887.0 / 456.0
	case fixed.Fix32:
		return 2341.0 / 456.0
	default:
		panic(fmt.Sprintf("hwmodel: unsupported precision %v", p))
	}
}

// FUArea returns per-FU datapath area (µm²) by precision (Table 4).
func FUArea(p fixed.Precision) float64 { return FUAreaFix8UM2 * precisionAreaScale(p) }

// FUPower returns per-FU power (µW, 10% switching) by precision (Table 4).
func FUPower(p fixed.Precision) float64 { return FUPowerFix8UW * precisionPowerScale(p) }

// AreaPerFU models Figure 9a: amortised per-FU area (µm², including control
// and routing) for a CU with the given lane and stage counts. Control logic
// is shared across lanes (SIMD's fundamental win over VLIW, §2.1.1), so
// per-FU overhead shrinks as lanes grow; deeper pipelines amortise
// sequencing logic slightly. Calibrated so the 16-lane/4-stage fix8 point
// averages ≈680 µm² (§5.1.1).
func AreaPerFU(lanes, stages int, p fixed.Precision) float64 {
	if lanes <= 0 || stages <= 0 {
		panic(fmt.Sprintf("hwmodel: bad CU config %dx%d", lanes, stages))
	}
	const (
		fuBase    = 450.0  // datapath share at fix8
		ctrlLane  = 2880.0 // control/crossbar amortised per lane
		ctrlStage = 200.0  // sequencing amortised per stage
	)
	raw := fuBase + ctrlLane/float64(lanes) + ctrlStage/float64(stages)
	return raw * precisionAreaScale(p)
}

// PowerPerFU models Figure 9b (µW at 10% switching); same amortisation
// structure as AreaPerFU, calibrated to the Table 4 anchor.
func PowerPerFU(lanes, stages int, p fixed.Precision) float64 {
	if lanes <= 0 || stages <= 0 {
		panic(fmt.Sprintf("hwmodel: bad CU config %dx%d", lanes, stages))
	}
	const (
		fuBase    = 294.0
		ctrlLane  = 2000.0
		ctrlStage = 150.0
	)
	raw := fuBase + ctrlLane/float64(lanes) + ctrlStage/float64(stages)
	return raw * precisionPowerScale(p)
}

// CUArea returns total CU area in mm² for a lane/stage configuration.
func CUArea(lanes, stages int, p fixed.Precision) float64 {
	return AreaPerFU(lanes, stages, p) * float64(lanes*stages) * 1e-6
}

// CUPower returns total CU power in mW.
func CUPower(lanes, stages int, p fixed.Precision) float64 {
	return PowerPerFU(lanes, stages, p) * float64(lanes*stages) * 1e-3
}

// MUPowerMW is the power of one active memory unit in mW (SRAM banks at
// ~10% activity; CACTI-style estimate — the paper does not publish an MU
// power anchor).
const MUPowerMW = 3.0

// GridCUs returns the number of CUs in the final grid (90 of 120 units).
func GridCUs() int {
	total := GridRows * GridCols
	return total * CUMURatio / (CUMURatio + 1)
}

// GridMUs returns the number of MUs in the final grid (30 of 120 units).
func GridMUs() int { return GridRows*GridCols - GridCUs() }

// Usage is a resource bill for a compiled design (or the full grid).
type Usage struct {
	CUs, MUs      int
	Lanes, Stages int
	Precision     fixed.Precision
}

// AreaMM2 returns the silicon area of the used units.
func (u Usage) AreaMM2() float64 {
	cu := CUArea(u.Lanes, u.Stages, u.Precision)
	return float64(u.CUs)*cu + float64(u.MUs)*MUAreaMM2
}

// PowerMW returns the power of the used units (unused units are
// clock-gated, §5.1.2 "unused CUs disabled").
func (u Usage) PowerMW() float64 {
	return float64(u.CUs)*CUPower(u.Lanes, u.Stages, u.Precision) + float64(u.MUs)*MUPowerMW
}

// AreaOverheadPct returns the chip-relative area overhead in percent when
// one such block is added to each of the chip's pipelines (Table 5's "+%"
// columns).
func (u Usage) AreaOverheadPct() float64 {
	return 100 * float64(Pipelines) * u.AreaMM2() / ChipAreaMM2
}

// PowerOverheadPct returns the chip-relative power overhead in percent.
func (u Usage) PowerOverheadPct() float64 {
	return 100 * float64(Pipelines) * u.PowerMW() / 1000 / ChipPowerW
}

// FullGrid returns the resource bill of the complete 12x10 MapReduce block
// at the final design point.
func FullGrid() Usage {
	return Usage{CUs: GridCUs(), MUs: GridMUs(), Lanes: 16, Stages: 4, Precision: fixed.Fix8}
}

// IsoAreaMATs converts a block area into the equivalent number of MAT
// stages ("an iso-area design would lose 3 MATs per pipeline", §5.1.1).
func IsoAreaMATs(areaMM2 float64) float64 { return areaMM2 / MATAreaMM2() }

// ThroughputPPS converts an initiation interval into the block's sustained
// packet rate at the fabric clock: one packet enters every ii cycles. Feed
// it the list schedule's measured II (sched.Schedule.II, surfaced as
// core.Device.ServiceII) rather than graphcheck's depth-only estimate — the
// schedule accounts for the issue-capacity contention the estimate ignores.
func ThroughputPPS(ii int) float64 {
	if ii <= 0 {
		return 0
	}
	return ClockGHz * 1e9 / float64(ii)
}

// MAT-only ML implementation costs (§5.1.4): MAT stages consumed by prior
// work mapping models onto match-action tables.
const (
	// N2NetMATsPerLayer: a binary-NN layer needs at least 12 MATs.
	N2NetMATsPerLayer = 12
	// IIsySVMMATs and IIsyKMeansMATs: the IIsy framework's table usage.
	IIsySVMMATs    = 8
	IIsyKMeansMATs = 2
)
