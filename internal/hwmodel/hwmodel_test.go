package hwmodel

import (
	"math"
	"testing"

	"taurus/internal/fixed"
)

func TestTable4Anchors(t *testing.T) {
	// Table 4 per-FU values at 16 lanes x 4 stages.
	if got := FUArea(fixed.Fix8); got != 670 {
		t.Errorf("fix8 FU area = %v", got)
	}
	if got := FUPower(fixed.Fix8); got != 456 {
		t.Errorf("fix8 FU power = %v", got)
	}
	if got := FUArea(fixed.Fix16); math.Abs(got-1338) > 1 {
		t.Errorf("fix16 FU area = %v, want 1338", got)
	}
	if got := FUArea(fixed.Fix32); math.Abs(got-2949) > 1 {
		t.Errorf("fix32 FU area = %v, want 2949", got)
	}
	if got := FUPower(fixed.Fix16); math.Abs(got-887) > 1 {
		t.Errorf("fix16 FU power = %v, want 887", got)
	}
	if got := FUPower(fixed.Fix32); math.Abs(got-2341) > 1 {
		t.Errorf("fix32 FU power = %v, want 2341", got)
	}
}

func TestCUAreaAnchor(t *testing.T) {
	// §5.1.1: the 16x4 fix8 CU takes 0.044 mm² (680 µm²/FU average).
	got := CUArea(16, 4, fixed.Fix8)
	if math.Abs(got-CUAreaMM2) > 0.003 {
		t.Errorf("CU area = %v mm², want ~%v", got, CUAreaMM2)
	}
	perFU := AreaPerFU(16, 4, fixed.Fix8)
	if perFU < 650 || perFU > 700 {
		t.Errorf("per-FU area = %v, want ~680", perFU)
	}
}

func TestFigure9Monotonicity(t *testing.T) {
	// Figure 9a: per-FU area decreases with more lanes (control amortised).
	lanes := []int{4, 8, 16, 32}
	for _, stages := range []int{2, 3, 4, 6} {
		prev := math.Inf(1)
		for _, l := range lanes {
			a := AreaPerFU(l, stages, fixed.Fix8)
			if a >= prev {
				t.Errorf("per-FU area not decreasing at %d lanes %d stages", l, stages)
			}
			prev = a
			p := PowerPerFU(l, stages, fixed.Fix8)
			if p <= 0 {
				t.Errorf("non-positive power at %dx%d", l, stages)
			}
		}
	}
	// 4-lane configs should be noticeably less efficient (paper's Fig 9a
	// shows ~2x worse per-FU area than 32-lane).
	r := AreaPerFU(4, 4, fixed.Fix8) / AreaPerFU(32, 4, fixed.Fix8)
	if r < 1.5 || r > 4 {
		t.Errorf("4-vs-32 lane per-FU ratio = %v", r)
	}
}

func TestBadCUConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AreaPerFU(0, 4, fixed.Fix8)
}

func TestUnsupportedPrecisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FUArea(fixed.Precision(12))
}

func TestGridComposition(t *testing.T) {
	if GridCUs() != 90 || GridMUs() != 30 {
		t.Errorf("grid = %d CUs / %d MUs, want 90/30", GridCUs(), GridMUs())
	}
	// §5.1.1: full grid ~4.8 mm²; +3.8% chip area for 4 pipelines.
	full := FullGrid()
	if a := full.AreaMM2(); math.Abs(a-4.8) > 0.3 {
		t.Errorf("grid area = %v, want ~4.8 mm²", a)
	}
	if pct := full.AreaOverheadPct(); math.Abs(pct-3.8) > 0.3 {
		t.Errorf("grid area overhead = %v%%, want ~3.8%%", pct)
	}
	// Power overhead should be a few percent (paper: 2.8%; our analytic
	// model lands near 4%).
	if pct := full.PowerOverheadPct(); pct < 2 || pct > 5 {
		t.Errorf("grid power overhead = %v%%, want 2-5%%", pct)
	}
}

func TestMATEquivalence(t *testing.T) {
	// §5.1.1: one MAT ~1.95 mm²; the 4.8 mm² grid ≈ 3 MATs ("an iso-area
	// design would lose 3 MATs per pipeline").
	mat := MATAreaMM2()
	if math.Abs(mat-1.953) > 0.01 {
		t.Errorf("MAT area = %v, want ~1.95", mat)
	}
	mats := IsoAreaMATs(FullGrid().AreaMM2())
	if mats < 2 || mats > 3 {
		t.Errorf("grid ≈ %v MATs, want 2-3", mats)
	}
}

func TestMATOnlyComparison(t *testing.T) {
	// §5.1.4: N2Net needs 12 MATs/layer -> 48 MATs for the 4-layer anomaly
	// DNN; Taurus consumes iso-area of ~3.
	n2net := N2NetMATsPerLayer * 4
	if n2net != 48 {
		t.Errorf("N2Net MATs = %d", n2net)
	}
	if IIsySVMMATs != 8 || IIsyKMeansMATs != 2 {
		t.Error("IIsy constants wrong")
	}
}

func TestUsageScaling(t *testing.T) {
	u := Usage{CUs: 10, MUs: 2, Lanes: 16, Stages: 4, Precision: fixed.Fix8}
	if a := u.AreaMM2(); math.Abs(a-(10*CUArea(16, 4, fixed.Fix8)+2*MUAreaMM2)) > 1e-9 {
		t.Errorf("usage area = %v", a)
	}
	double := Usage{CUs: 20, MUs: 4, Lanes: 16, Stages: 4, Precision: fixed.Fix8}
	if double.AreaMM2() <= u.AreaMM2() || double.PowerMW() <= u.PowerMW() {
		t.Error("usage should scale with units")
	}
	if u.AreaOverheadPct() <= 0 || u.PowerOverheadPct() <= 0 {
		t.Error("overheads should be positive")
	}
}
