// Package compiler lowers MapReduce graphs onto the CGRA grid — the
// "target-dependent compilation" stage of §4: innermost Map/Reduce pairs
// become SIMD operations within a CU, long element-wise chains are split
// into CU-sized pieces, lookup tables land on MUs, and the whole design is
// placed on the grid and routed by Manhattan distance.
//
// Unrolling (§4 "Target-Independent Optimizations", Table 7) is controlled
// by MaxCUs: restricting the compute-unit pool forces parallel pattern
// instances to share units, trading initiation interval (a known fraction
// of line rate) for area.
package compiler

import (
	"fmt"
	"math/bits"

	"taurus/internal/cgra"
	"taurus/internal/hwmodel"
	mr "taurus/internal/mapreduce"
)

// Options configures compilation.
type Options struct {
	// Grid is the target fabric (DefaultGrid if zero).
	Grid cgra.GridSpec
	// MaxCUs caps the compute units available (0 = whole grid). Parallel
	// groups beyond the cap share units round-robin, raising II.
	MaxCUs int
	// MaxMUs caps the memory units available for LUTs (0 = whole grid).
	MaxMUs int
}

// Result is a compiled design.
type Result struct {
	Graph     *mr.Graph
	Placement *cgra.Placement
	// Stats from the timing model: latency, II, units touched.
	Stats cgra.Stats
	// Usage is the resource bill (distinct CUs + MUs including weight
	// storage) for hwmodel area/power accounting.
	Usage hwmodel.Usage
	// WeightBytes is the total constant storage the model needs.
	WeightBytes int
	// LUTCount is the number of lookup tables mapped to MUs.
	LUTCount int
}

// AreaMM2 returns the silicon area of the compiled design.
func (r *Result) AreaMM2() float64 { return r.Usage.AreaMM2() }

// PowerMW returns the power draw of the compiled design.
func (r *Result) PowerMW() float64 { return r.Usage.PowerMW() }

// fusible reports whether a node kind can join a CU chain.
func fusible(k mr.Kind) bool {
	switch k {
	case mr.KMap, mr.KUnary, mr.KRequant, mr.KScale, mr.KReduce:
		return true
	default:
		return false
	}
}

// log2Ceil returns ceil(log2(n)) for n >= 1.
func log2Ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// nodeSlots returns the pipeline issue slots one node occupies in a CU with
// the given lane count.
func nodeSlots(g *mr.Graph, n *mr.Node, lanes int) int {
	switch n.Kind {
	case mr.KReduce:
		w := g.Node(n.Args[0]).Width
		if w > lanes {
			w = lanes // reduction tree is per chunk; chunk count handled by iterations
		}
		return log2Ceil(w)
	case mr.KScale:
		// A wide rescale is the FU's post-op output shifter: free when fused
		// into a chain.
		return 0
	default:
		return 1
	}
}

// Compile lowers g onto the grid.
func Compile(g *mr.Graph, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: invalid graph: %w", err)
	}
	spec := opts.Grid
	if spec == (cgra.GridSpec{}) {
		spec = cgra.DefaultGrid()
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}

	groups, nodeGroup := fuse(g, spec)
	groups, nodeGroup = mergeAdjacent(g, spec, groups, nodeGroup)
	pl := &cgra.Placement{Spec: spec, Groups: groups, NodeGroup: nodeGroup}
	if err := place(g, pl, opts); err != nil {
		return nil, err
	}
	stats, err := cgra.Timing(g, pl)
	if err != nil {
		return nil, fmt.Errorf("compiler: timing: %w", err)
	}

	weightBytes, lutCount := 0, 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case mr.KConst:
			weightBytes += n.Width
		case mr.KLUT:
			lutCount++
		}
	}
	// Weight storage MUs beyond the LUT MUs: each MU holds
	// MUBanks*MUEntries bytes; LUT tables consume LUTSize bytes each of the
	// MU they sit on, leaving room for weights alongside.
	capPerMU := hwmodel.MUBanks * hwmodel.MUEntries
	bytesNeeded := weightBytes + lutCount*mr.LUTSize
	museNeeded := (bytesNeeded + capPerMU - 1) / capPerMU
	mus := stats.MUsUsed
	if museNeeded > mus {
		mus = museNeeded
	}
	if weightBytes > 0 && mus == 0 {
		mus = 1
	}

	return &Result{
		Graph:     g,
		Placement: pl,
		Stats:     stats,
		Usage: hwmodel.Usage{
			CUs: stats.CUsUsed, MUs: mus,
			Lanes: spec.Lanes, Stages: spec.Stages, Precision: spec.Precision,
		},
		WeightBytes: weightBytes,
		LUTCount:    lutCount,
	}, nil
}

// fuse partitions compute nodes into convex groups (chains) sized for one
// CU traversal, and wraps LUTs and wires in their own groups.
func fuse(g *mr.Graph, spec cgra.GridSpec) ([]*cgra.Group, []int) {
	// uses counts *distinct consumers* (a node consuming the same value on
	// both operands, like x*x, is one consumer).
	uses := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		seen := map[mr.NodeID]bool{}
		for _, a := range n.Args {
			if !seen[a] {
				uses[a]++
				seen[a] = true
			}
		}
	}
	for _, o := range g.Outputs {
		uses[o]++ // outputs have an external consumer
	}

	nodeGroup := make([]int, len(g.Nodes))
	for i := range nodeGroup {
		nodeGroup[i] = -1
	}
	var groups []*cgra.Group

	// Slot budgets: a pure element-wise chain fills the pipeline depth; a
	// chain containing a reduction may additionally use per-cycle fractions
	// of a stage for the tree (§5.1.3), plus a couple of trailing scalar
	// ops (bias add, requant).
	chainCap := spec.Stages
	reduceCap := 2 + log2Ceil(spec.Lanes) + 2

	inGroup := func(grp *cgra.Group, id mr.NodeID) bool {
		for _, m := range grp.Nodes {
			if m == id {
				return true
			}
		}
		return false
	}

	for _, n := range g.Nodes {
		if nodeGroup[n.ID] != -1 {
			continue
		}
		switch n.Kind {
		case mr.KInput, mr.KConst:
			continue
		case mr.KConcat, mr.KSlice:
			grp := &cgra.Group{Kind: cgra.GroupWire, Nodes: []mr.NodeID{n.ID}, Slots: 0, Iterations: 1, Pack: 1}
			nodeGroup[n.ID] = len(groups)
			groups = append(groups, grp)
		case mr.KLUT:
			iters := (n.Width + hwmodel.MUBanks - 1) / hwmodel.MUBanks
			grp := &cgra.Group{Kind: cgra.GroupMU, Nodes: []mr.NodeID{n.ID}, Slots: 1, Iterations: iters, Pack: 1}
			nodeGroup[n.ID] = len(groups)
			groups = append(groups, grp)
		default: // compute chain head
			grp := &cgra.Group{Kind: cgra.GroupCU, Nodes: []mr.NodeID{n.ID}, Iterations: 1, Pack: 1}
			slots := nodeSlots(g, n, spec.Lanes)
			hasReduce := n.Kind == mr.KReduce
			maxWidth := chainWidth(g, n)
			gi := len(groups)
			nodeGroup[n.ID] = gi

			tail := n
			for {
				// The tail must have exactly one consumer, the consumer
				// must be fusible compute, and all its other args must be
				// constants or already in this group (convexity).
				if uses[tail.ID] != 1 {
					break
				}
				var next *mr.Node
				for _, cand := range g.Nodes[tail.ID+1:] {
					for _, a := range cand.Args {
						if a == tail.ID {
							next = cand
							break
						}
					}
					if next != nil {
						break
					}
				}
				if next == nil || !fusible(next.Kind) || nodeGroup[next.ID] != -1 {
					break
				}
				ok := true
				for _, a := range next.Args {
					if a == tail.ID {
						continue
					}
					an := g.Node(a)
					if an.Kind == mr.KConst || inGroup(grp, a) {
						continue
					}
					ok = false
					break
				}
				if !ok {
					break
				}
				nextSlots := slots + nodeSlots(g, next, spec.Lanes)
				nextReduce := hasReduce || next.Kind == mr.KReduce
				cap := chainCap
				if nextReduce {
					cap = reduceCap
				}
				if nextSlots > cap {
					break
				}
				if w := chainWidth(g, next); w > maxWidth {
					maxWidth = w
				}
				grp.Nodes = append(grp.Nodes, next.ID)
				nodeGroup[next.ID] = gi
				slots = nextSlots
				hasReduce = nextReduce
				tail = next
			}
			grp.Slots = slots
			grp.Iterations = (maxWidth + spec.Lanes - 1) / spec.Lanes
			if grp.Iterations < 1 {
				grp.Iterations = 1
			}
			groups = append(groups, grp)
		}
	}
	return groups, nodeGroup
}

// mergeAdjacent bin-packs small neighbouring CU groups into shared units: a
// fan-out inside a CU is free (lanes read the same relative location), so
// sibling element-wise ops of a piecewise function need not each burn a CU.
// Only adjacent groups in topological order merge, which preserves convexity
// (no intermediate group can depend on the first and feed the second).
func mergeAdjacent(g *mr.Graph, spec cgra.GridSpec, groups []*cgra.Group, nodeGroup []int) ([]*cgra.Group, []int) {
	hasReduce := func(grp *cgra.Group) bool {
		for _, n := range grp.Nodes {
			if g.Node(n).Kind == mr.KReduce {
				return true
			}
		}
		return false
	}
	chainCap := spec.Stages
	reduceCap := 2 + log2Ceil(spec.Lanes) + 2

	var out []*cgra.Group
	for _, grp := range groups {
		if len(out) > 0 {
			prev := out[len(out)-1]
			cap := chainCap
			if hasReduce(prev) || hasReduce(grp) {
				cap = reduceCap
			}
			if prev.Kind == cgra.GroupCU && grp.Kind == cgra.GroupCU &&
				prev.Iterations == 1 && grp.Iterations == 1 &&
				prev.Slots+grp.Slots <= cap {
				prev.Nodes = append(prev.Nodes, grp.Nodes...)
				prev.Slots += grp.Slots
				continue
			}
		}
		out = append(out, grp)
	}
	for gi, grp := range out {
		for _, n := range grp.Nodes {
			nodeGroup[n] = gi
		}
	}
	return out, nodeGroup
}

// chainWidth is the lane demand of a node: its own width, or its argument's
// width for reductions (the tree consumes the wide input).
func chainWidth(g *mr.Graph, n *mr.Node) int {
	w := n.Width
	if n.Kind == mr.KReduce {
		if aw := g.Node(n.Args[0]).Width; aw > w {
			w = aw
		}
	}
	return w
}

// place assigns groups to grid units: greedy nearest-free-unit to the
// producer centroid, one column deeper; wires sit at their producer
// centroid. When the unit pool is exhausted (or capped), groups share the
// least-loaded unit, raising II.
func place(g *mr.Graph, pl *cgra.Placement, opts Options) error {
	spec := pl.Spec
	var freeCUs, freeMUs []cgra.Coord
	for c := 0; c < spec.Cols; c++ {
		for r := 0; r < spec.Rows; r++ {
			pos := cgra.Coord{Row: r, Col: c}
			if spec.IsMU(pos) {
				freeMUs = append(freeMUs, pos)
			} else {
				freeCUs = append(freeCUs, pos)
			}
		}
	}
	if opts.MaxCUs > 0 && opts.MaxCUs < len(freeCUs) {
		freeCUs = freeCUs[:opts.MaxCUs]
	}
	if opts.MaxMUs > 0 && opts.MaxMUs < len(freeMUs) {
		freeMUs = freeMUs[:opts.MaxMUs]
	}
	if len(freeCUs) == 0 || len(freeMUs) == 0 {
		return fmt.Errorf("compiler: grid has no usable units (CUs=%d MUs=%d)", len(freeCUs), len(freeMUs))
	}

	used := map[cgra.Coord]int{}        // load per used unit
	lutHome := map[*mr.LUT]cgra.Coord{} // table -> MU hosting it
	inPort := spec.InputPort()

	// Producer position of a node for centroid computation.
	nodePos := make([]cgra.Coord, len(g.Nodes))
	for i := range nodePos {
		nodePos[i] = inPort
	}

	takeNearest := func(pool *[]cgra.Coord, want cgra.Coord) (cgra.Coord, bool) {
		if len(*pool) == 0 {
			return cgra.Coord{}, false
		}
		best, bestD := 0, 1<<30
		for i, c := range *pool {
			if d := c.Manhattan(want); d < bestD {
				best, bestD = i, d
			}
		}
		pos := (*pool)[best]
		(*pool) = append((*pool)[:best], (*pool)[best+1:]...)
		return pos, true
	}
	shareLeastLoaded := func(kind cgra.GroupKind) (cgra.Coord, error) {
		best := cgra.Coord{Row: -1}
		bestLoad := 1 << 30
		for pos, load := range used {
			if spec.IsMU(pos) != (kind == cgra.GroupMU) {
				continue
			}
			if load < bestLoad {
				best, bestLoad = pos, load
			}
		}
		if best.Row < 0 {
			return cgra.Coord{}, fmt.Errorf("compiler: no unit available to share for %v group", kind)
		}
		return best, nil
	}

	for _, grp := range pl.Groups {
		// Desired position: centroid of external producers, one column in.
		sumR, sumC, cnt := 0, 0, 0
		for _, m := range grp.Nodes {
			for _, a := range g.Node(m).Args {
				an := g.Node(a)
				if an.Kind == mr.KConst {
					continue
				}
				p := nodePos[a]
				sumR += p.Row
				sumC += p.Col
				cnt++
			}
		}
		want := inPort
		if cnt > 0 {
			want = cgra.Coord{Row: sumR / cnt, Col: sumC/cnt + 1}
		} else {
			want = cgra.Coord{Row: spec.Rows / 2, Col: 0}
		}
		if want.Col >= spec.Cols {
			want.Col = spec.Cols - 1
		}
		if want.Col < 0 {
			want.Col = 0
		}
		if want.Row < 0 {
			want.Row = 0
		}
		if want.Row >= spec.Rows {
			want.Row = spec.Rows - 1
		}

		switch grp.Kind {
		case cgra.GroupWire:
			grp.Pos = want
		case cgra.GroupMU:
			// Lookups against the same table share one MU: its banks serve
			// parallel reads (bank pressure surfaces as II in the timing
			// model if oversubscribed).
			lutKey := g.Node(grp.Nodes[0]).LUT
			if prev, ok := lutHome[lutKey]; ok {
				grp.Pos = prev
				used[prev]++
				break
			}
			pos, ok := takeNearest(&freeMUs, want)
			if !ok {
				var err error
				pos, err = shareLeastLoaded(cgra.GroupMU)
				if err != nil {
					return err
				}
			}
			grp.Pos = pos
			lutHome[lutKey] = pos
			used[pos]++
		default:
			pos, ok := takeNearest(&freeCUs, want)
			if !ok {
				var err error
				pos, err = shareLeastLoaded(cgra.GroupCU)
				if err != nil {
					return err
				}
			}
			grp.Pos = pos
			used[pos]++
		}
		for _, m := range grp.Nodes {
			nodePos[m] = grp.Pos
		}
	}
	return nil
}
