package compiler

import (
	"math/rand"
	"testing"

	"taurus/internal/cgra"
	"taurus/internal/fixed"
	mr "taurus/internal/mapreduce"
)

// randomGraph builds a random but valid MapReduce program: a DAG of map,
// unary, reduce, requant, concat and slice nodes over one input vector.
func randomGraph(rng *rand.Rand) (*mr.Graph, int) {
	b := mr.NewBuilder("random")
	inWidth := 2 + rng.Intn(15)
	vals := []mr.Value{b.Input("x", inWidth)}
	mult, err := fixed.NewMultiplier(0.25)
	if err != nil {
		panic(err)
	}
	nodes := 3 + rng.Intn(20)
	for i := 0; i < nodes; i++ {
		pick := vals[rng.Intn(len(vals))]
		var v mr.Value
		switch rng.Intn(6) {
		case 0:
			c := make([]int32, pick.Width())
			for j := range c {
				c[j] = int32(rng.Intn(21) - 10)
			}
			v = b.Map(mr.MapOp(rng.Intn(5)), pick, b.Const("c", c))
		case 1:
			v = b.Unary(mr.UnaryOp(rng.Intn(4)), pick)
		case 2:
			v = b.Reduce(mr.ReduceOp(rng.Intn(5)), pick)
		case 3:
			v = b.Requant(pick, mult)
		case 4:
			other := vals[rng.Intn(len(vals))]
			v = b.Concat(pick, other)
			if v.Width() > 48 {
				continue // keep widths bounded
			}
		default:
			if pick.Width() < 2 {
				continue
			}
			w := 1 + rng.Intn(pick.Width()-1)
			v = b.Slice(pick, rng.Intn(pick.Width()-w), w)
		}
		vals = append(vals, v)
	}
	b.Output(vals[len(vals)-1])
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g, inWidth
}

// Every random program must compile onto the grid, pass placement
// validation, and produce exactly the interpreter's values through
// cgra.Run — with finite, sane timing.
func TestRandomGraphsCompileAndMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		g, inWidth := randomGraph(rng)
		res, err := Compile(g, Options{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		in := make([]int32, inWidth)
		for i := range in {
			in[i] = int32(rng.Intn(255) - 128)
		}
		want, err := g.Eval(in)
		if err != nil {
			t.Fatalf("trial %d: eval: %v", trial, err)
		}
		got, stats, err := cgra.Run(g, res.Placement, in)
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		for oi := range want {
			for j := range want[oi] {
				if got[oi][j] != want[oi][j] {
					t.Fatalf("trial %d: output[%d][%d] = %d, want %d",
						trial, oi, j, got[oi][j], want[oi][j])
				}
			}
		}
		if stats.LatencyCycles <= 0 || stats.LatencyCycles > 10000 {
			t.Fatalf("trial %d: implausible latency %d", trial, stats.LatencyCycles)
		}
		if stats.II < 1 {
			t.Fatalf("trial %d: II = %d", trial, stats.II)
		}
	}
}

// Random graphs under restricted grids (fewer CUs, narrower lanes) must
// still compile, with II reflecting the sharing.
func TestRandomGraphsUnderPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	grid := cgra.DefaultGrid()
	grid.Lanes = 8
	for trial := 0; trial < 60; trial++ {
		g, inWidth := randomGraph(rng)
		res, err := Compile(g, Options{Grid: grid, MaxCUs: 3})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		if res.Usage.CUs > 3 {
			t.Fatalf("trial %d: used %d CUs over the cap", trial, res.Usage.CUs)
		}
		in := make([]int32, inWidth)
		want, err := g.Eval(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, _, err := cgra.Run(g, res.Placement, in)
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		if got[0][0] != want[0][0] {
			t.Fatalf("trial %d: value mismatch under pressure", trial)
		}
	}
}
