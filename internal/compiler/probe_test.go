package compiler

import (
	"math/rand"
	"testing"

	"taurus/internal/dataset"
	"taurus/internal/fixed"
	"taurus/internal/lower"
	mr "taurus/internal/mapreduce"
	"taurus/internal/ml"
)

// TestProbeModels prints the compiled footprint of the Table 5 models and
// Table 6 microbenchmarks; run with -v to inspect. Numeric assertions live
// in compiler_test.go; this is the calibration window.
func TestProbeModels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// Anomaly DNN 6-12-6-3-1.
	gen, _ := dataset.NewAnomalyGenerator(dataset.DefaultAnomalyConfig(), rng)
	X, y := dataset.Split(gen.Records(400))
	n := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	ml.NewTrainer(n, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 5}, rng).Fit(X, y)
	q, err := ml.Quantize(n, X[:100])
	if err != nil {
		t.Fatal(err)
	}
	dnnG, err := lower.DNN(q, "dnn")
	if err != nil {
		t.Fatal(err)
	}
	report(t, "DNN", dnnG)

	// KMeans 11 features, 5 clusters.
	ig, _ := dataset.NewIoTGenerator(dataset.KMeansIoTConfig(), rng)
	XI, _ := ig.Samples(300)
	km, err := ml.TrainKMeans(XI, 5, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	var flat []float32
	for _, x := range XI {
		flat = append(flat, x...)
	}
	kmG, err := lower.KMeans(km, fixed.QuantizerFor(flat), "kmeans")
	if err != nil {
		t.Fatal(err)
	}
	report(t, "KMeans", kmG)

	// SVM 8 features.
	genS, _ := dataset.NewAnomalyGenerator(dataset.AnomalyConfig{NumFeatures: 8, AnomalyFraction: 0.4, Separation: 1.2}, rng)
	XS, yS := dataset.SplitPM(genS.Records(200))
	svm, err := ml.TrainSVM(XS, yS, ml.DefaultSVMConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var flatS []float32
	for _, x := range XS {
		flatS = append(flatS, x...)
	}
	svmG, err := lower.SVM(svm, fixed.QuantizerFor(flatS), 12, "svm")
	if err != nil {
		t.Fatal(err)
	}
	report(t, "SVM", svmG)

	// LSTM 4-32-5.
	l := ml.NewLSTM(4, 32, 5, rng)
	lstmG, err := lower.LSTMStep(l, fixed.NewQuantizer(1.0), "lstm")
	if err != nil {
		t.Fatal(err)
	}
	report(t, "LSTM", lstmG)

	// Microbenchmarks.
	suite, err := lower.Microbenchmarks(16)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range suite {
		report(t, "micro/"+name, g)
	}

	// Conv1D unrolling sweep (Table 7).
	conv, _ := lower.Conv1D(8, 2)
	for _, maxCU := range []int{1, 2, 4, 8} {
		res, err := Compile(conv, Options{MaxCUs: maxCU})
		if err != nil {
			t.Fatalf("conv unroll %d: %v", maxCU, err)
		}
		t.Logf("Conv1D maxCU=%d: II=%d rate=%.3f CUs=%d area=%.3f lat=%dns",
			maxCU, res.Stats.II, res.Stats.LineRateFraction(), res.Usage.CUs, res.AreaMM2(), res.Stats.LatencyCycles)
	}
}

func report(t *testing.T, name string, g *mr.Graph) {
	t.Helper()
	res, err := Compile(g, Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	t.Logf("%-18s II=%-3d lat=%4dns CUs=%-3d MUs=%-2d area=%.3fmm2 (+%.2f%%) power=%.0fmW (+%.2f%%) weights=%dB luts=%d",
		name, res.Stats.II, res.Stats.LatencyCycles, res.Usage.CUs, res.Usage.MUs,
		res.AreaMM2(), res.Usage.AreaOverheadPct(), res.PowerMW(), res.Usage.PowerOverheadPct(),
		res.WeightBytes, res.LUTCount)
}
