package compiler

import (
	"math/rand"
	"testing"

	"taurus/internal/cgra"
	"taurus/internal/dataset"
	"taurus/internal/fixed"
	"taurus/internal/lower"
	mr "taurus/internal/mapreduce"
	"taurus/internal/ml"
)

// compileMicro compiles a named microbenchmark at width 16.
func compileMicro(t *testing.T, name string) *Result {
	t.Helper()
	suite, err := lower.Microbenchmarks(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(suite[name], Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestInnerProductOperatingPoint(t *testing.T) {
	res := compileMicro(t, "InnerProduct")
	// Table 6: the 16-element inner product runs at line rate in a single
	// CU with ~23 ns latency (ours: PHV 4+4, links, 5-cycle traversal).
	if res.Stats.II != 1 {
		t.Errorf("II = %d, want 1", res.Stats.II)
	}
	if res.Usage.CUs != 1 {
		t.Errorf("CUs = %d, want 1", res.Usage.CUs)
	}
	if res.Stats.LatencyCycles < 18 || res.Stats.LatencyCycles > 28 {
		t.Errorf("latency = %d, want ~23 cycles", res.Stats.LatencyCycles)
	}
}

func TestReLUOperatingPoint(t *testing.T) {
	res := compileMicro(t, "ReLU")
	if res.Stats.II != 1 || res.Usage.CUs != 1 {
		t.Errorf("II=%d CUs=%d", res.Stats.II, res.Usage.CUs)
	}
	if res.Stats.LatencyCycles < 17 || res.Stats.LatencyCycles > 26 {
		t.Errorf("latency = %d, want ~22 cycles", res.Stats.LatencyCycles)
	}
}

// Table 6 orderings that must hold: nonlinear Taylor > piecewise > LUT in
// area; everything at line rate.
func TestMicrobenchmarkShape(t *testing.T) {
	suite, err := lower.Microbenchmarks(16)
	if err != nil {
		t.Fatal(err)
	}
	areas := map[string]float64{}
	for name, g := range suite {
		res, err := Compile(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.II != 1 {
			t.Errorf("%s: II = %d, want line rate", name, res.Stats.II)
		}
		areas[name] = res.AreaMM2()
	}
	if !(areas["TanhExp"] > areas["TanhPW"]) {
		t.Errorf("TanhExp (%.3f) should exceed TanhPW (%.3f)", areas["TanhExp"], areas["TanhPW"])
	}
	if !(areas["SigmoidExp"] > areas["ActLUT"]) {
		t.Errorf("SigmoidExp (%.3f) should exceed ActLUT (%.3f)", areas["SigmoidExp"], areas["ActLUT"])
	}
	if !(areas["Conv1D"] > areas["InnerProduct"]) {
		t.Errorf("Conv1D (%.3f) should exceed InnerProduct (%.3f)", areas["Conv1D"], areas["InnerProduct"])
	}
	if !(areas["ReLU"] <= areas["TanhPW"]) {
		t.Errorf("ReLU (%.3f) should not exceed TanhPW (%.3f)", areas["ReLU"], areas["TanhPW"])
	}
}

// Table 7: unrolling Conv1D trades area for line rate.
func TestConv1DUnrollingSweep(t *testing.T) {
	conv, err := lower.Conv1D(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	prevArea := 0.0
	for _, u := range []struct {
		maxCU    int
		wantRate float64
	}{
		{1, 1.0 / 8}, {2, 1.0 / 4}, {4, 1.0 / 2}, {8, 1},
	} {
		res, err := Compile(conv, Options{MaxCUs: u.maxCU})
		if err != nil {
			t.Fatalf("unroll %d: %v", u.maxCU, err)
		}
		if got := res.Stats.LineRateFraction(); got != u.wantRate {
			t.Errorf("maxCU=%d: line rate %v, want %v", u.maxCU, got, u.wantRate)
		}
		if res.Usage.CUs != u.maxCU {
			t.Errorf("maxCU=%d: used %d CUs", u.maxCU, res.Usage.CUs)
		}
		if res.AreaMM2() <= prevArea {
			t.Errorf("area should grow with unrolling: %v after %v", res.AreaMM2(), prevArea)
		}
		prevArea = res.AreaMM2()
	}
}

// The compiled DNN must compute exactly what the quantised reference does,
// run at line rate, and land near the paper's resource envelope.
func TestCompiledDNN(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	gen, err := dataset.NewAnomalyGenerator(dataset.DefaultAnomalyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	X, y := dataset.Split(gen.Records(400))
	n := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	ml.NewTrainer(n, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 8}, rng).Fit(X, y)
	q, err := ml.Quantize(n, X[:100])
	if err != nil {
		t.Fatal(err)
	}
	g, err := lower.DNN(q, "dnn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.II != 1 {
		t.Errorf("DNN II = %d, want line rate", res.Stats.II)
	}
	// Paper: DNN ~1.0 mm² (≈0.8% of chip), ~221 ns. Same order for us.
	if a := res.AreaMM2(); a < 0.5 || a > 2.0 {
		t.Errorf("DNN area = %.3f mm², want ~1", a)
	}
	if l := res.Stats.LatencyCycles; l < 60 || l > 300 {
		t.Errorf("DNN latency = %d ns, want same order as 221", l)
	}
	// Bit-exactness through the placed design.
	for _, x := range X[:50] {
		codes := q.InputQ.QuantizeSlice(x)
		in := make([]int32, len(codes))
		for i, c := range codes {
			in[i] = int32(c)
		}
		outs, _, err := cgra.Run(g, res.Placement, in)
		if err != nil {
			t.Fatal(err)
		}
		want := q.ForwardCodes(codes)
		if outs[0][0] != int32(want[0]) {
			t.Fatalf("CGRA output %d != reference %d", outs[0][0], want[0])
		}
	}
	_ = y
}

// Table 5 cross-model shape: KMeans < SVM < DNN < LSTM in area; LSTM is the
// only model below line rate.
func TestTable5Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(56))

	ig, _ := dataset.NewIoTGenerator(dataset.KMeansIoTConfig(), rng)
	XI, _ := ig.Samples(300)
	km, err := ml.TrainKMeans(XI, 5, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	var flat []float32
	for _, x := range XI {
		flat = append(flat, x...)
	}
	kmG, err := lower.KMeans(km, fixed.QuantizerFor(flat), "kmeans")
	if err != nil {
		t.Fatal(err)
	}

	genS, _ := dataset.NewAnomalyGenerator(dataset.AnomalyConfig{NumFeatures: 8, AnomalyFraction: 0.4, Separation: 1.2}, rng)
	XS, yS := dataset.SplitPM(genS.Records(200))
	svm, err := ml.TrainSVM(XS, yS, ml.DefaultSVMConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var flatS []float32
	for _, x := range XS {
		flatS = append(flatS, x...)
	}
	svmG, err := lower.SVM(svm, fixed.QuantizerFor(flatS), 12, "svm")
	if err != nil {
		t.Fatal(err)
	}

	gen, _ := dataset.NewAnomalyGenerator(dataset.DefaultAnomalyConfig(), rng)
	X, y := dataset.Split(gen.Records(300))
	dnn := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	ml.NewTrainer(dnn, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 5}, rng).Fit(X, y)
	q, err := ml.Quantize(dnn, X[:100])
	if err != nil {
		t.Fatal(err)
	}
	dnnG, err := lower.DNN(q, "dnn")
	if err != nil {
		t.Fatal(err)
	}

	lstm := ml.NewLSTM(4, 32, 5, rng)
	lstmG, err := lower.LSTMStep(lstm, fixed.NewQuantizer(1.0), "lstm")
	if err != nil {
		t.Fatal(err)
	}

	results := map[string]*Result{}
	for name, g := range map[string]*mr.Graph{"kmeans": kmG, "svm": svmG, "dnn": dnnG, "lstm": lstmG} {
		res, err := Compile(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = res
	}

	if !(results["kmeans"].AreaMM2() < results["svm"].AreaMM2() &&
		results["svm"].AreaMM2() < results["dnn"].AreaMM2() &&
		results["dnn"].AreaMM2() < results["lstm"].AreaMM2()) {
		t.Errorf("area ordering violated: kmeans=%.2f svm=%.2f dnn=%.2f lstm=%.2f",
			results["kmeans"].AreaMM2(), results["svm"].AreaMM2(),
			results["dnn"].AreaMM2(), results["lstm"].AreaMM2())
	}
	for _, name := range []string{"kmeans", "svm", "dnn"} {
		if results[name].Stats.II != 1 {
			t.Errorf("%s: II = %d, want line rate", name, results[name].Stats.II)
		}
	}
	if results["lstm"].Stats.II <= 1 {
		t.Error("LSTM should run below line rate (paper: Perf —)")
	}
	if !(results["kmeans"].Stats.LatencyCycles < results["dnn"].Stats.LatencyCycles &&
		results["dnn"].Stats.LatencyCycles < results["lstm"].Stats.LatencyCycles) {
		t.Errorf("latency ordering violated: kmeans=%d dnn=%d lstm=%d",
			results["kmeans"].Stats.LatencyCycles,
			results["dnn"].Stats.LatencyCycles,
			results["lstm"].Stats.LatencyCycles)
	}
	// All models fit in the 12x10 grid with its 3.8% chip overhead.
	full := results["lstm"].Usage
	if full.CUs > 90 {
		t.Errorf("LSTM uses %d CUs, exceeds the 90-CU grid", full.CUs)
	}
	_ = y
}

func TestCompileErrors(t *testing.T) {
	// Invalid graph.
	b := mr.NewBuilder("bad")
	b.Input("x", 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected build error")
	}
	g := &mr.Graph{Name: "empty"}
	if _, err := Compile(g, Options{}); err == nil {
		t.Error("empty graph should fail")
	}
	// Invalid grid.
	ok, _ := lower.ReLUBench(4)
	if _, err := Compile(ok, Options{Grid: cgra.GridSpec{Rows: -1}}); err == nil {
		t.Error("bad grid should fail")
	}
}

func TestCompileWideVectorChunks(t *testing.T) {
	// A 36-wide dot product needs ceil(36/16)=3 iterations -> II=3.
	b := mr.NewBuilder("wide")
	x := b.Input("x", 36)
	w := make([]int32, 36)
	for i := range w {
		w[i] = 1
	}
	wv := b.Const("w", w)
	b.Output(b.DotProduct(wv, x))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.II != 3 {
		t.Errorf("wide dot II = %d, want 3", res.Stats.II)
	}
}

func TestPrecisionScalesArea(t *testing.T) {
	g, err := lower.InnerProduct(16)
	if err != nil {
		t.Fatal(err)
	}
	spec8 := cgra.DefaultGrid()
	spec16 := spec8
	spec16.Precision = fixed.Fix16
	r8, err := Compile(g, Options{Grid: spec8})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Compile(g, Options{Grid: spec16})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r16.AreaMM2() / r8.AreaMM2()
	if ratio < 1.4 || ratio > 2.2 {
		t.Errorf("fix16/fix8 area ratio = %v, want ~2 (Table 4)", ratio)
	}
}
