package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// FiveTuple identifies a flow the way the switch's stateful registers do
// (§5.2.2: "uses the packet's five-tuple to index a set of stateful
// registers").
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the tuple for logs.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%08x:%d->%08x:%d/%d", t.SrcIP, t.SrcPort, t.DstIP, t.DstPort, t.Proto)
}

// Flow is one connection expanded into a packet trace: the paper generates
// "labeled packet-level traces ... by expanding connection-level records to
// binned packet traces" (§5.2.2).
type Flow struct {
	Tuple   FiveTuple
	Record  Record
	Packets int // total packets this flow will emit
	Sent    int // packets emitted so far
}

// Packet is one trace element.
type Packet struct {
	Flow *Flow
	Time float64 // seconds since trace start
	Size int     // bytes on the wire
}

// TraceConfig parameterises trace expansion.
type TraceConfig struct {
	Anomaly AnomalyConfig
	// PacketRate is the aggregate packets/second offered to the switch.
	PacketRate float64
	// ActiveFlows is the size of the working set of concurrent flows.
	ActiveFlows int
	// MeanFlowPackets is the mean flow length in packets (geometric).
	MeanFlowPackets int
}

// DefaultTraceConfig returns the Table 8 workload: 5 Gb/s of ~780 B packets
// ≈ 800 kpps over a working set of concurrent flows.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Anomaly:         DefaultAnomalyConfig(),
		PacketRate:      800_000,
		ActiveFlows:     512,
		MeanFlowPackets: 64,
	}
}

// TraceGenerator streams packets drawn from a mix of concurrent flows.
type TraceGenerator struct {
	cfg    TraceConfig
	gen    *AnomalyGenerator
	rng    *rand.Rand
	active []*Flow
	now    float64
	nextID uint32
}

// NewTraceGenerator validates cfg and builds a streaming generator.
func NewTraceGenerator(cfg TraceConfig, rng *rand.Rand) (*TraceGenerator, error) {
	if cfg.PacketRate <= 0 {
		return nil, fmt.Errorf("dataset: PacketRate must be positive, got %v", cfg.PacketRate)
	}
	if cfg.ActiveFlows <= 0 {
		return nil, fmt.Errorf("dataset: ActiveFlows must be positive, got %d", cfg.ActiveFlows)
	}
	if cfg.MeanFlowPackets <= 0 {
		return nil, fmt.Errorf("dataset: MeanFlowPackets must be positive, got %d", cfg.MeanFlowPackets)
	}
	ag, err := NewAnomalyGenerator(cfg.Anomaly, rng)
	if err != nil {
		return nil, err
	}
	t := &TraceGenerator{cfg: cfg, gen: ag, rng: rng}
	for i := 0; i < cfg.ActiveFlows; i++ {
		t.active = append(t.active, t.newFlow())
	}
	return t, nil
}

// newFlow draws a fresh labelled flow. Flow length is geometric with the
// configured mean (§5.2.2 samples the flow-size distribution from the
// original traces; a class-independent geometric keeps packet-weighted and
// record-weighted accuracy aligned, so the data-plane F1 matches the
// model's offline F1 as in Table 8).
func (t *TraceGenerator) newFlow() *Flow {
	rec := t.gen.Record()
	mean := float64(t.cfg.MeanFlowPackets)
	if mean < 1 {
		mean = 1
	}
	// Geometric with the given mean: p = 1/mean.
	n := 1
	p := 1 / mean
	for t.rng.Float64() > p && n < 100000 {
		n++
	}
	t.nextID++
	tuple := FiveTuple{
		SrcIP:   0x0a000000 | t.nextID,
		DstIP:   0x0a800000 | uint32(t.rng.Intn(1<<16)),
		SrcPort: uint16(1024 + t.rng.Intn(60000)),
		DstPort: uint16([]int{80, 443, 22, 53, 8080}[t.rng.Intn(5)]),
		Proto:   6,
	}
	return &Flow{Tuple: tuple, Record: rec, Packets: n}
}

// Next returns the next packet in the trace. Interarrivals are exponential
// at the configured aggregate rate; the emitting flow is chosen uniformly
// from the working set, and exhausted flows are replaced.
func (t *TraceGenerator) Next() Packet {
	t.now += t.rng.ExpFloat64() / t.cfg.PacketRate
	idx := t.rng.Intn(len(t.active))
	f := t.active[idx]
	f.Sent++
	if f.Sent >= f.Packets {
		t.active[idx] = t.newFlow()
	}
	// Packet sizes: lognormal clamped to [64, 1500] (mean ≈ 780 B).
	size := int(math.Exp(6.4 + 0.5*t.rng.NormFloat64()))
	if size < 64 {
		size = 64
	}
	if size > 1500 {
		size = 1500
	}
	return Packet{Flow: f, Time: t.now, Size: size}
}

// Now returns the trace clock (time of the last emitted packet).
func (t *TraceGenerator) Now() float64 { return t.now }
