package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"taurus/internal/tensor"
)

// DriftConfig parameterises the concept-drifting variant of the anomaly
// workload: the generator interpolates between the calibrated class models
// and a "drifted world" whose feature means and attack mix have moved, so a
// model trained before the drift faces a decision boundary that no longer
// holds (§3.3.1's motivation for continuous online retraining).
type DriftConfig struct {
	// Base is the pre-drift workload (DefaultAnomalyConfig if zero).
	Base AnomalyConfig
	// MeanShift scales how far the drifted world's feature means move from
	// the base models. At the default 1.0 the benign flash-crowd occupies
	// the feature band the pre-drift DoS signature lived in, inverting the
	// learned boundary on the count features while the classes stay
	// separable (a retrained model recovers).
	MeanShift float64
}

// DefaultDriftConfig returns the calibrated drifting workload.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Base: DefaultAnomalyConfig(), MeanShift: 1.0}
}

// driftedClassModels builds the phase-1 world: benign traffic turns into a
// flash crowd (connection and service counts rise into the band volumetric
// attacks used to own), the dominant DoS family goes low-and-slow (counts
// collapse, payloads shrink further), and probes slow down. The boundary a
// pre-drift model learned on the count features is inverted, but every class
// keeps a learnable signature.
func driftedClassModels(sep, shift float64) [numClasses][8]featureModel {
	m := classModels(sep)
	// Benign flash crowd: high counts, slightly longer sessions.
	m[Benign][0].mu += 0.4 * shift
	m[Benign][3].mu += 1.8 * shift
	m[Benign][4].mu += 1.5 * shift
	m[Benign][6].mu += 0.6 * shift
	// DoS low-and-slow: counts fall below the new benign band, payloads
	// shrink, error rate spikes harder.
	m[DoS][1].mu -= 1.0 * shift
	m[DoS][2].mu -= 0.8 * shift
	m[DoS][3].mu -= 1.6 * shift
	m[DoS][4].mu -= 1.2 * shift
	m[DoS][6].mu += 0.6 * shift
	// Probes pace themselves under the noise floor.
	m[Probe][3].mu -= 1.0 * shift
	m[Probe][4].mu -= 0.6 * shift
	m[Probe][1].mu -= 0.6 * shift
	return m
}

// driftedAttackMix is the phase-1 attack mix: volumetric DoS recedes while
// the stealthier families grow.
var driftedAttackMix = []struct {
	class Class
	w     float64
}{
	{DoS, 0.38}, {Probe, 0.30}, {R2L, 0.24}, {U2R, 0.08},
}

// DriftingGenerator produces labelled KDD-like records whose distribution
// interpolates between the base world (phase 0) and the drifted world
// (phase 1). Phase is advanced explicitly by the traffic driver, so
// experiments control drift speed deterministically.
type DriftingGenerator struct {
	cfg     DriftConfig
	base    [numClasses][8]featureModel
	drifted [numClasses][8]featureModel
	phase   float64
	rng     *rand.Rand
}

// NewDriftingGenerator validates cfg and builds a generator seeded by rng,
// starting at phase 0.
func NewDriftingGenerator(cfg DriftConfig, rng *rand.Rand) (*DriftingGenerator, error) {
	if cfg.Base == (AnomalyConfig{}) {
		cfg.Base = DefaultAnomalyConfig()
	}
	if err := cfg.Base.validate(); err != nil {
		return nil, err
	}
	if cfg.MeanShift < 0 {
		return nil, fmt.Errorf("dataset: MeanShift must be non-negative, got %v", cfg.MeanShift)
	}
	if cfg.MeanShift == 0 {
		cfg.MeanShift = 1.0
	}
	return &DriftingGenerator{
		cfg:     cfg,
		base:    classModels(cfg.Base.Separation),
		drifted: driftedClassModels(cfg.Base.Separation, cfg.MeanShift),
		rng:     rng,
	}, nil
}

// SetPhase moves the generator to phase p (clamped into [0, 1]).
func (g *DriftingGenerator) SetPhase(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	g.phase = p
}

// Phase returns the current drift phase.
func (g *DriftingGenerator) Phase() float64 { return g.phase }

// sampleClass draws a class from the phase-interpolated attack mix.
func (g *DriftingGenerator) sampleClass() Class {
	if g.rng.Float64() >= g.cfg.Base.AnomalyFraction {
		return Benign
	}
	r := g.rng.Float64()
	var acc float64
	for i, am := range attackMix {
		w := (1-g.phase)*am.w + g.phase*driftedAttackMix[i].w
		acc += w
		if r < acc {
			return am.class
		}
	}
	return DoS
}

// Record draws one labelled record at the current phase.
func (g *DriftingGenerator) Record() Record {
	class := g.sampleClass()
	feats := make(tensor.Vec, g.cfg.Base.NumFeatures)
	for f := 0; f < g.cfg.Base.NumFeatures; f++ {
		b, d := g.base[class][f], g.drifted[class][f]
		mu := (1-g.phase)*b.mu + g.phase*d.mu
		sigma := (1-g.phase)*b.sigma + g.phase*d.sigma
		raw := math.Exp(mu + sigma*g.rng.NormFloat64())
		v := math.Log1p(raw)
		if v > 8 {
			v = 8
		}
		feats[f] = float32(v)
	}
	return Record{Features: feats, Class: class}
}

// Records draws n labelled records at the current phase.
func (g *DriftingGenerator) Records(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Record()
	}
	return out
}
