package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"taurus/internal/tensor"
)

// DriftConfig parameterises the concept-drifting variant of the anomaly
// workload: the generator interpolates between the calibrated class models
// and a "drifted world" whose feature means and attack mix have moved, so a
// model trained before the drift faces a decision boundary that no longer
// holds (§3.3.1's motivation for continuous online retraining).
type DriftConfig struct {
	// Base is the pre-drift workload (DefaultAnomalyConfig if zero).
	Base AnomalyConfig
	// MeanShift scales how far the drifted world's feature means move from
	// the base models. At the default 1.0 the benign flash-crowd occupies
	// the feature band the pre-drift DoS signature lived in, inverting the
	// learned boundary on the count features while the classes stay
	// separable (a retrained model recovers).
	MeanShift float64
}

// DefaultDriftConfig returns the calibrated drifting workload.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Base: DefaultAnomalyConfig(), MeanShift: 1.0}
}

// driftedClassModels builds the phase-1 world: benign traffic turns into a
// flash crowd (connection and service counts rise into the band volumetric
// attacks used to own), the dominant DoS family goes low-and-slow (counts
// collapse, payloads shrink further), and probes slow down. The boundary a
// pre-drift model learned on the count features is inverted, but every class
// keeps a learnable signature.
func driftedClassModels(sep, shift float64) [numClasses][8]featureModel {
	m := classModels(sep)
	// Benign flash crowd: high counts, slightly longer sessions.
	m[Benign][0].mu += 0.4 * shift
	m[Benign][3].mu += 1.8 * shift
	m[Benign][4].mu += 1.5 * shift
	m[Benign][6].mu += 0.6 * shift
	// DoS low-and-slow: counts fall below the new benign band, payloads
	// shrink, error rate spikes harder.
	m[DoS][1].mu -= 1.0 * shift
	m[DoS][2].mu -= 0.8 * shift
	m[DoS][3].mu -= 1.6 * shift
	m[DoS][4].mu -= 1.2 * shift
	m[DoS][6].mu += 0.6 * shift
	// Probes pace themselves under the noise floor.
	m[Probe][3].mu -= 1.0 * shift
	m[Probe][4].mu -= 0.6 * shift
	m[Probe][1].mu -= 0.6 * shift
	return m
}

// driftedAttackMix is the phase-1 attack mix: volumetric DoS recedes while
// the stealthier families grow.
var driftedAttackMix = []struct {
	class Class
	w     float64
}{
	{DoS, 0.38}, {Probe, 0.30}, {R2L, 0.24}, {U2R, 0.08},
}

// DriftingGenerator produces labelled KDD-like records whose distribution
// interpolates between the base world (phase 0) and the drifted world
// (phase 1). Phase is advanced explicitly by the traffic driver, so
// experiments control drift speed deterministically.
type DriftingGenerator struct {
	cfg     DriftConfig
	base    [numClasses][8]featureModel
	drifted [numClasses][8]featureModel
	phase   float64
	rng     *rand.Rand
}

// NewDriftingGenerator validates cfg and builds a generator seeded by rng,
// starting at phase 0.
func NewDriftingGenerator(cfg DriftConfig, rng *rand.Rand) (*DriftingGenerator, error) {
	if cfg.Base == (AnomalyConfig{}) {
		cfg.Base = DefaultAnomalyConfig()
	}
	if err := cfg.Base.validate(); err != nil {
		return nil, err
	}
	if cfg.MeanShift < 0 {
		return nil, fmt.Errorf("dataset: MeanShift must be non-negative, got %v", cfg.MeanShift)
	}
	if cfg.MeanShift == 0 {
		cfg.MeanShift = 1.0
	}
	return &DriftingGenerator{
		cfg:     cfg,
		base:    classModels(cfg.Base.Separation),
		drifted: driftedClassModels(cfg.Base.Separation, cfg.MeanShift),
		rng:     rng,
	}, nil
}

// SetPhase moves the generator to phase p (clamped into [0, 1]).
func (g *DriftingGenerator) SetPhase(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	g.phase = p
}

// Phase returns the current drift phase.
func (g *DriftingGenerator) Phase() float64 { return g.phase }

// sampleClass draws a class from the phase-interpolated attack mix.
func (g *DriftingGenerator) sampleClass() Class {
	if g.rng.Float64() >= g.cfg.Base.AnomalyFraction {
		return Benign
	}
	r := g.rng.Float64()
	var acc float64
	for i, am := range attackMix {
		w := (1-g.phase)*am.w + g.phase*driftedAttackMix[i].w
		acc += w
		if r < acc {
			return am.class
		}
	}
	return DoS
}

// Record draws one labelled record at the current phase.
func (g *DriftingGenerator) Record() Record {
	class := g.sampleClass()
	feats := make(tensor.Vec, g.cfg.Base.NumFeatures)
	for f := 0; f < g.cfg.Base.NumFeatures; f++ {
		b, d := g.base[class][f], g.drifted[class][f]
		mu := (1-g.phase)*b.mu + g.phase*d.mu
		sigma := (1-g.phase)*b.sigma + g.phase*d.sigma
		raw := math.Exp(mu + sigma*g.rng.NormFloat64())
		v := math.Log1p(raw)
		if v > 8 {
			v = 8
		}
		feats[f] = float32(v)
	}
	return Record{Features: feats, Class: class}
}

// Records draws n labelled records at the current phase.
func (g *DriftingGenerator) Records(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Record()
	}
	return out
}

// IoTDriftConfig parameterises the drifting variant of the IoT traffic-
// classification workload: device categories keep emitting traffic, but the
// feature signature of each category migrates toward the territory another
// category used to occupy — firmware updates, protocol changes, and new
// device generations in the TMC setting. A classifier deployed before the
// drift assigns the old owner's label to the new occupant; re-clustering on
// fresh labelled telemetry recovers.
type IoTDriftConfig struct {
	// Base is the pre-drift workload (KMeansIoTConfig if zero).
	Base IoTConfig
	// CentreShift in (0, 1] is how far each class centre travels toward the
	// next class's pre-drift centre at full phase (default 0.8: classes
	// nearly swap territories but stay separable).
	CentreShift float64
	// DriftedMix is the phase-1 class mix (must sum to ~1 with one weight
	// per class). The pre-drift mix is uniform; interpolating toward a
	// skewed mix models device-generation turnover and gives the control
	// plane's score-distribution detectors something to see. Default:
	// weights proportional to NumClasses-c — skewed enough to move the
	// predicted-category histogram, while the rarest class keeps enough
	// traffic for a retrain to re-learn it.
	DriftedMix []float64
}

// DefaultIoTDriftConfig returns the calibrated drifting IoT workload.
func DefaultIoTDriftConfig() IoTDriftConfig {
	return IoTDriftConfig{Base: KMeansIoTConfig(), CentreShift: 0.8}
}

// DriftingIoTGenerator produces labelled IoT samples whose class centres
// interpolate between the base geometry (phase 0) and a drifted one
// (phase 1). Phase is advanced explicitly by the traffic driver.
type DriftingIoTGenerator struct {
	cfg     IoTDriftConfig
	base    []tensor.Vec
	drifted []tensor.Vec
	sigma   float64
	phase   float64
	rng     *rand.Rand
}

// NewDriftingIoTGenerator validates cfg and builds a generator seeded by
// rng, starting at phase 0.
func NewDriftingIoTGenerator(cfg IoTDriftConfig, rng *rand.Rand) (*DriftingIoTGenerator, error) {
	if cfg.Base == (IoTConfig{}) {
		cfg.Base = KMeansIoTConfig()
	}
	if err := cfg.Base.validate(); err != nil {
		return nil, err
	}
	if cfg.CentreShift == 0 {
		cfg.CentreShift = 0.8
	}
	if cfg.CentreShift < 0 || cfg.CentreShift > 1 {
		return nil, fmt.Errorf("dataset: CentreShift must be in (0,1], got %v", cfg.CentreShift)
	}
	k := cfg.Base.NumClasses
	if cfg.DriftedMix == nil {
		total := float64(k) * float64(k+1) / 2
		for c := 0; c < k; c++ {
			cfg.DriftedMix = append(cfg.DriftedMix, float64(k-c)/total)
		}
	}
	if len(cfg.DriftedMix) != k {
		return nil, fmt.Errorf("dataset: DriftedMix has %d weights for %d classes", len(cfg.DriftedMix), k)
	}
	var mixSum float64
	for _, w := range cfg.DriftedMix {
		if w < 0 {
			return nil, fmt.Errorf("dataset: DriftedMix weight %v is negative", w)
		}
		mixSum += w
	}
	if math.Abs(mixSum-1) > 1e-6 {
		return nil, fmt.Errorf("dataset: DriftedMix sums to %v, want 1", mixSum)
	}
	base, sigma := iotGeometry(cfg.Base)
	// Drifted world: class c's centre moves CentreShift of the way toward
	// class (c+1)'s base centre, so the pre-drift decision regions end up
	// owned by different categories while pairwise separation survives.
	drifted := make([]tensor.Vec, len(base))
	for c := range base {
		next := base[(c+1)%len(base)]
		d := make(tensor.Vec, len(base[c]))
		for f := range d {
			d[f] = base[c][f] + float32(cfg.CentreShift)*(next[f]-base[c][f])
		}
		drifted[c] = d
	}
	return &DriftingIoTGenerator{cfg: cfg, base: base, drifted: drifted, sigma: sigma, rng: rng}, nil
}

// SetPhase moves the generator to phase p (clamped into [0, 1]).
func (g *DriftingIoTGenerator) SetPhase(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	g.phase = p
}

// Phase returns the current drift phase.
func (g *DriftingIoTGenerator) Phase() float64 { return g.phase }

// sampleClass draws a category from the phase-interpolated mix: uniform at
// phase 0, DriftedMix at phase 1.
func (g *DriftingIoTGenerator) sampleClass() int {
	k := g.cfg.Base.NumClasses
	r := g.rng.Float64()
	acc := 0.0
	for c := 0; c < k; c++ {
		acc += (1-g.phase)/float64(k) + g.phase*g.cfg.DriftedMix[c]
		if r < acc {
			return c
		}
	}
	return k - 1
}

// Record draws one labelled sample at the current phase. Class carries the
// device-category index (0..NumClasses-1), reusing the Record container.
func (g *DriftingIoTGenerator) Record() Record {
	class := g.sampleClass()
	x := make(tensor.Vec, g.cfg.Base.NumFeatures)
	for f := range x {
		mu := (1-g.phase)*float64(g.base[class][f]) + g.phase*float64(g.drifted[class][f])
		x[f] = float32(mu + g.rng.NormFloat64()*g.sigma)
	}
	return Record{Features: x, Class: Class(class)}
}

// Records draws n labelled samples at the current phase.
func (g *DriftingIoTGenerator) Records(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Record()
	}
	return out
}
