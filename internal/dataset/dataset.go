// Package dataset generates the labelled workloads the paper evaluates on.
//
// The paper uses NSL-KDD connection records (expanded to binned packet
// traces, §5.2.2) for anomaly detection and TMC IoT traffic for the Table 3
// classifiers. Neither raw dataset can ship in this repository, so we build
// seeded synthetic equivalents: class-conditional feature distributions with
// heavy-tailed traffic statistics, deliberately overlapping so that a
// well-trained model lands near the paper's operating points (offline F1
// ≈ 71 for the anomaly DNN, accuracy ≈ 67% for the IoT classifiers) rather
// than at a trivially-separable 100%.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"taurus/internal/tensor"
)

// Class labels the traffic categories of the NSL-KDD taxonomy (Table 1 uses
// the same attack families).
type Class int

const (
	// Benign is normal traffic.
	Benign Class = iota
	// DoS is a volumetric denial-of-service flow (e.g. SYN flood).
	DoS
	// Probe is reconnaissance (e.g. port scan).
	Probe
	// U2R is an unauthorised-access-to-root attack.
	U2R
	// R2L is an unauthorised remote access attack.
	R2L
	numClasses
)

// String names the class like the KDD literature does.
func (c Class) String() string {
	switch c {
	case Benign:
		return "benign"
	case DoS:
		return "dos"
	case Probe:
		return "probe"
	case U2R:
		return "u2r"
	case R2L:
		return "r2l"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Anomalous reports whether the class is an attack.
func (c Class) Anomalous() bool { return c != Benign }

// NumAnomalyFeatures is the anomaly-detection feature count: the paper's DNN
// uses a six-feature KDD subset (§5.1.2).
const NumAnomalyFeatures = 6

// NumSVMFeatures is the SVM's eight-feature KDD subset (§5.1.2).
const NumSVMFeatures = 8

// Record is one labelled connection.
type Record struct {
	Features tensor.Vec
	Class    Class
}

// Anomalous reports whether the record is an attack.
func (r Record) Anomalous() bool { return r.Class.Anomalous() }

// AnomalyConfig parameterises the synthetic KDD-like generator.
type AnomalyConfig struct {
	// NumFeatures selects the feature-subset width (6 for the DNN, 8 for
	// the SVM). Must be between 1 and 8.
	NumFeatures int
	// AnomalyFraction is the fraction of attack records (default 0.3 — NSL-
	// KDD is attack-heavy).
	AnomalyFraction float64
	// Separation scales how far attack feature distributions sit from
	// benign ones. 0.5 is calibrated so the trained anomaly DNN's offline
	// F1 lands near the paper's 71.1 (§5.2.2).
	Separation float64
}

// DefaultAnomalyConfig returns the calibrated configuration.
func DefaultAnomalyConfig() AnomalyConfig {
	return AnomalyConfig{NumFeatures: NumAnomalyFeatures, AnomalyFraction: 0.3, Separation: 0.5}
}

// validate normalises and checks the configuration.
func (c *AnomalyConfig) validate() error {
	if c.NumFeatures <= 0 || c.NumFeatures > 8 {
		return fmt.Errorf("dataset: NumFeatures must be in [1,8], got %d", c.NumFeatures)
	}
	if c.AnomalyFraction <= 0 || c.AnomalyFraction >= 1 {
		return fmt.Errorf("dataset: AnomalyFraction must be in (0,1), got %v", c.AnomalyFraction)
	}
	if c.Separation <= 0 {
		return fmt.Errorf("dataset: Separation must be positive, got %v", c.Separation)
	}
	return nil
}

// featureModel describes how one feature is distributed for one class:
// value = logNormal(mu, sigma) truncated and then log-compressed, mimicking
// KDD's heavy-tailed counters (duration, bytes, counts) after the log
// preprocessing of §3.1.
type featureModel struct {
	mu    float64 // mean of underlying normal
	sigma float64
}

// classModels[class][feature]. Feature semantics (KDD-ish):
// 0 duration, 1 src_bytes, 2 dst_bytes, 3 count (conns to same host / 2s),
// 4 srv_count, 5 urgent/flag ratio, 6 serror_rate, 7 same_srv_rate.
func classModels(sep float64) [numClasses][8]featureModel {
	d := func(mu, sigma float64) featureModel { return featureModel{mu, sigma} }
	var m [numClasses][8]featureModel
	m[Benign] = [8]featureModel{
		d(1.0, 1.0), d(4.0, 1.2), d(4.2, 1.2), d(1.2, 0.8),
		d(1.0, 0.8), d(0.1, 0.3), d(0.3, 0.4), d(2.0, 0.6),
	}
	// DoS: short duration, tiny payloads, huge connection counts, high
	// serror rate.
	m[DoS] = [8]featureModel{
		d(1.0-0.8*sep, 0.9), d(4.0-2.2*sep, 1.0), d(4.2-3.0*sep, 1.0), d(1.2+2.4*sep, 0.9),
		d(1.0+2.0*sep, 0.9), d(0.1+0.2*sep, 0.3), d(0.3+1.6*sep, 0.5), d(2.0-1.0*sep, 0.7),
	}
	// Probe: many distinct services, small transfers.
	m[Probe] = [8]featureModel{
		d(1.0-0.5*sep, 0.9), d(4.0-1.6*sep, 1.1), d(4.2-1.8*sep, 1.1), d(1.2+1.6*sep, 0.9),
		d(1.0-0.6*sep, 0.8), d(0.1+0.1*sep, 0.3), d(0.3+0.8*sep, 0.5), d(2.0-1.4*sep, 0.7),
	}
	// U2R: long sessions, large src payloads, rare — distributions overlap
	// benign heavily (these are the hard ones).
	m[U2R] = [8]featureModel{
		d(1.0+0.9*sep, 1.0), d(4.0+0.8*sep, 1.2), d(4.2+0.3*sep, 1.2), d(1.2-0.2*sep, 0.8),
		d(1.0-0.1*sep, 0.8), d(0.1+0.9*sep, 0.5), d(0.3+0.2*sep, 0.4), d(2.0+0.2*sep, 0.6),
	}
	// R2L: interactive, moderate payloads, overlaps benign.
	m[R2L] = [8]featureModel{
		d(1.0+0.5*sep, 1.0), d(4.0+0.5*sep, 1.2), d(4.2+0.6*sep, 1.2), d(1.2+0.1*sep, 0.8),
		d(1.0+0.2*sep, 0.8), d(0.1+0.5*sep, 0.4), d(0.3+0.3*sep, 0.4), d(2.0+0.1*sep, 0.6),
	}
	return m
}

// attackMix is the relative frequency of attack families (DoS dominates real
// KDD traffic; U2R is rare).
var attackMix = []struct {
	class Class
	w     float64
}{
	{DoS, 0.62}, {Probe, 0.24}, {R2L, 0.12}, {U2R, 0.02},
}

// AnomalyGenerator produces labelled KDD-like records.
type AnomalyGenerator struct {
	cfg    AnomalyConfig
	models [numClasses][8]featureModel
	rng    *rand.Rand
}

// NewAnomalyGenerator validates cfg and builds a generator seeded by rng.
func NewAnomalyGenerator(cfg AnomalyConfig, rng *rand.Rand) (*AnomalyGenerator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &AnomalyGenerator{cfg: cfg, models: classModels(cfg.Separation), rng: rng}, nil
}

// sampleClass draws a class according to the configured anomaly fraction and
// the attack mix.
func (g *AnomalyGenerator) sampleClass() Class {
	if g.rng.Float64() >= g.cfg.AnomalyFraction {
		return Benign
	}
	r := g.rng.Float64()
	var acc float64
	for _, am := range attackMix {
		acc += am.w
		if r < acc {
			return am.class
		}
	}
	return DoS
}

// Record draws one labelled record. Features are log-compressed into a
// compact numeric range (roughly [0, 8]) as the preprocessing MATs would
// (§3.1: "taking a logarithm of an exponentially distributed variable").
func (g *AnomalyGenerator) Record() Record {
	class := g.sampleClass()
	return g.RecordOfClass(class)
}

// RecordOfClass draws a record conditioned on a specific class.
func (g *AnomalyGenerator) RecordOfClass(class Class) Record {
	feats := make(tensor.Vec, g.cfg.NumFeatures)
	for f := 0; f < g.cfg.NumFeatures; f++ {
		m := g.models[class][f]
		raw := math.Exp(m.mu + m.sigma*g.rng.NormFloat64())
		v := math.Log1p(raw) // log-compression (feature engineering, §3.1)
		if v > 8 {
			v = 8
		}
		feats[f] = float32(v)
	}
	return Record{Features: feats, Class: class}
}

// Records draws n labelled records.
func (g *AnomalyGenerator) Records(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Record()
	}
	return out
}

// Split converts records into (X, y) with y=1 for anomalies — the binary
// training target of §5.2.2.
func Split(recs []Record) ([]tensor.Vec, []int) {
	X := make([]tensor.Vec, len(recs))
	y := make([]int, len(recs))
	for i, r := range recs {
		X[i] = r.Features
		if r.Anomalous() {
			y[i] = 1
		}
	}
	return X, y
}

// SplitPM converts records into (X, y) with y=±1 for SVM training.
func SplitPM(recs []Record) ([]tensor.Vec, []int) {
	X, y := Split(recs)
	for i := range y {
		if y[i] == 0 {
			y[i] = -1
		}
	}
	return X, y
}
