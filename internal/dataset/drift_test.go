package dataset

import (
	"math/rand"
	"testing"
)

func TestDriftingGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDriftingGenerator(DriftConfig{MeanShift: -1}, rng); err == nil {
		t.Error("negative MeanShift accepted")
	}
	if _, err := NewDriftingGenerator(DriftConfig{Base: AnomalyConfig{NumFeatures: 99, AnomalyFraction: 0.3, Separation: 0.5}}, rng); err == nil {
		t.Error("invalid base config accepted")
	}
	g, err := NewDriftingGenerator(DriftConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Phase() != 0 {
		t.Errorf("initial phase = %v, want 0", g.Phase())
	}
}

func TestDriftingGeneratorPhaseClamps(t *testing.T) {
	g, err := NewDriftingGenerator(DefaultDriftConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	g.SetPhase(-0.5)
	if g.Phase() != 0 {
		t.Errorf("phase after SetPhase(-0.5) = %v, want 0", g.Phase())
	}
	g.SetPhase(2)
	if g.Phase() != 1 {
		t.Errorf("phase after SetPhase(2) = %v, want 1", g.Phase())
	}
}

// TestDriftingGeneratorMovesDistributions checks the drift actually inverts
// the count-feature boundary: pre-drift DoS out-counts benign; post-drift
// the benign flash-crowd out-counts the low-and-slow DoS.
func TestDriftingGeneratorMovesDistributions(t *testing.T) {
	g, err := NewDriftingGenerator(DefaultDriftConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	const countFeature = 3
	meanCount := func(n int) (benign, dos float64) {
		var nb, nd int
		for i := 0; i < n; i++ {
			r := g.Record()
			switch r.Class {
			case Benign:
				benign += float64(r.Features[countFeature])
				nb++
			case DoS:
				dos += float64(r.Features[countFeature])
				nd++
			}
		}
		if nb == 0 || nd == 0 {
			t.Fatal("class starved in sample")
		}
		return benign / float64(nb), dos / float64(nd)
	}

	preBenign, preDoS := meanCount(8000)
	if preDoS <= preBenign {
		t.Errorf("pre-drift: DoS count mean %.2f should exceed benign %.2f", preDoS, preBenign)
	}
	g.SetPhase(1)
	postBenign, postDoS := meanCount(8000)
	if postBenign <= postDoS {
		t.Errorf("post-drift: benign count mean %.2f should exceed DoS %.2f", postBenign, postDoS)
	}
	if postBenign <= preBenign {
		t.Errorf("benign count mean should rise under drift: %.2f -> %.2f", preBenign, postBenign)
	}
}

func TestDriftingIoTGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDriftingIoTGenerator(IoTDriftConfig{CentreShift: -0.5}, rng); err == nil {
		t.Error("negative CentreShift accepted")
	}
	if _, err := NewDriftingIoTGenerator(IoTDriftConfig{Base: IoTConfig{NumFeatures: 0, NumClasses: 5, Overlap: 0.3}}, rng); err == nil {
		t.Error("invalid base config accepted")
	}
	g, err := NewDriftingIoTGenerator(IoTDriftConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Phase() != 0 {
		t.Errorf("initial phase = %v, want 0", g.Phase())
	}
	g.SetPhase(3)
	if g.Phase() != 1 {
		t.Errorf("phase after SetPhase(3) = %v, want 1", g.Phase())
	}
}

// TestDriftingIoTGeneratorMovesCentres: at phase 1 every class's empirical
// centre must sit closer to the next class's pre-drift centre than to its
// own — the territory migration a frozen classifier cannot survive.
func TestDriftingIoTGeneratorMovesCentres(t *testing.T) {
	cfg := DefaultIoTDriftConfig()
	g, err := NewDriftingIoTGenerator(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	k := cfg.Base.NumClasses
	empirical := func(n int) [][]float64 {
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, cfg.Base.NumFeatures)
		}
		for i := 0; i < n; i++ {
			r := g.Record()
			c := int(r.Class)
			counts[c]++
			for f, v := range r.Features {
				sums[c][f] += float64(v)
			}
		}
		for c := range sums {
			if counts[c] == 0 {
				t.Fatal("class starved in sample")
			}
			for f := range sums[c] {
				sums[c][f] /= float64(counts[c])
			}
		}
		return sums
	}
	sqDist := func(a []float64, b []float32) float64 {
		var d float64
		for i := range a {
			dd := a[i] - float64(b[i])
			d += dd * dd
		}
		return d
	}

	pre := empirical(6000)
	for c := 0; c < k; c++ {
		if sqDist(pre[c], g.base[c]) >= sqDist(pre[c], g.base[(c+1)%k]) {
			t.Errorf("phase 0: class %d centre should sit at its own base centre", c)
		}
	}
	g.SetPhase(1)
	post := empirical(6000)
	for c := 0; c < k; c++ {
		if sqDist(post[c], g.base[(c+1)%k]) >= sqDist(post[c], g.base[c]) {
			t.Errorf("phase 1: class %d centre should have migrated toward class %d's territory", c, (c+1)%k)
		}
	}
}

// TestDriftingGeneratorPhaseZeroMatchesBase: at phase 0 the drifting
// generator must sample the same distributions as the plain generator.
func TestDriftingGeneratorPhaseZeroMatchesBase(t *testing.T) {
	cfg := DefaultDriftConfig()
	dg, err := NewDriftingGenerator(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	bg, err := NewAnomalyGenerator(cfg.Base, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeds and identical sampling structure: record streams match.
	for i := 0; i < 64; i++ {
		dr, br := dg.Record(), bg.Record()
		if dr.Class != br.Class {
			t.Fatalf("record %d: class %v vs base %v", i, dr.Class, br.Class)
		}
		for f := range dr.Features {
			if dr.Features[f] != br.Features[f] {
				t.Fatalf("record %d feature %d: %v vs base %v", i, f, dr.Features[f], br.Features[f])
			}
		}
	}
}
