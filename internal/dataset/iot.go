package dataset

import (
	"fmt"
	"math/rand"

	"taurus/internal/tensor"
)

// IoTConfig parameterises the TMC-like IoT traffic-classification dataset
// used by Table 3 (classifiers 4x10x2 etc.: 4 features, 2 classes) and by
// the KMeans IoT benchmark of Table 5 (11 features, 5 categories).
type IoTConfig struct {
	NumFeatures int
	NumClasses  int
	// Overlap in [0,1) controls how much class distributions overlap;
	// higher overlap lowers achievable accuracy. 0.93 is calibrated so the
	// Table 3 DNNs land near the paper's ~67% accuracy.
	Overlap float64
}

// DefaultIoTConfig returns the Table 3 configuration.
func DefaultIoTConfig() IoTConfig {
	return IoTConfig{NumFeatures: 4, NumClasses: 2, Overlap: 0.93}
}

// KMeansIoTConfig returns the Table 5 KMeans configuration (11 features,
// 5 device categories).
func KMeansIoTConfig() IoTConfig {
	return IoTConfig{NumFeatures: 11, NumClasses: 5, Overlap: 0.3}
}

// IoTGenerator draws labelled IoT device-traffic samples. Each class is a
// Gaussian cluster whose centre is placed on a scaled simplex; Overlap
// widens the clusters relative to their separation.
type IoTGenerator struct {
	cfg     IoTConfig
	centres []tensor.Vec
	sigma   float64
	rng     *rand.Rand
}

// validate checks the configuration.
func (c IoTConfig) validate() error {
	if c.NumFeatures <= 0 {
		return fmt.Errorf("dataset: NumFeatures must be positive, got %d", c.NumFeatures)
	}
	if c.NumClasses < 2 {
		return fmt.Errorf("dataset: NumClasses must be >= 2, got %d", c.NumClasses)
	}
	if c.Overlap < 0 || c.Overlap >= 1 {
		return fmt.Errorf("dataset: Overlap must be in [0,1), got %v", c.Overlap)
	}
	return nil
}

// NewIoTGenerator validates cfg and builds a generator.
func NewIoTGenerator(cfg IoTConfig, rng *rand.Rand) (*IoTGenerator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	centres, sigma := iotGeometry(cfg)
	return &IoTGenerator{cfg: cfg, centres: centres, sigma: sigma, rng: rng}, nil
}

// iotGeometry places the class centres and derives the cluster width.
// Centres are deterministic pseudo-random directions at unit separation,
// derived from a fixed internal source so the geometry does not depend on
// the caller's rng state; sigma grows with overlap: at Overlap=0 clusters
// are tight (~0.2 separation units); as Overlap→1 they merge.
func iotGeometry(cfg IoTConfig) ([]tensor.Vec, float64) {
	geo := rand.New(rand.NewSource(42))
	centres := make([]tensor.Vec, 0, cfg.NumClasses)
	for c := 0; c < cfg.NumClasses; c++ {
		centre := make(tensor.Vec, cfg.NumFeatures)
		for f := range centre {
			centre[f] = float32(geo.NormFloat64())
		}
		centres = append(centres, centre)
	}
	return centres, 0.2 + 1.6*cfg.Overlap
}

// Sample draws one labelled feature vector.
func (g *IoTGenerator) Sample() (tensor.Vec, int) {
	class := g.rng.Intn(g.cfg.NumClasses)
	x := make(tensor.Vec, g.cfg.NumFeatures)
	for f := range x {
		x[f] = g.centres[class][f] + float32(g.rng.NormFloat64()*g.sigma)
	}
	return x, class
}

// Samples draws n labelled vectors.
func (g *IoTGenerator) Samples(n int) ([]tensor.Vec, []int) {
	X := make([]tensor.Vec, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		X[i], y[i] = g.Sample()
	}
	return X, y
}
