package dataset

import (
	"fmt"
	"math/rand"

	"taurus/internal/tensor"
)

// IoTConfig parameterises the TMC-like IoT traffic-classification dataset
// used by Table 3 (classifiers 4x10x2 etc.: 4 features, 2 classes) and by
// the KMeans IoT benchmark of Table 5 (11 features, 5 categories).
type IoTConfig struct {
	NumFeatures int
	NumClasses  int
	// Overlap in [0,1) controls how much class distributions overlap;
	// higher overlap lowers achievable accuracy. 0.93 is calibrated so the
	// Table 3 DNNs land near the paper's ~67% accuracy.
	Overlap float64
}

// DefaultIoTConfig returns the Table 3 configuration.
func DefaultIoTConfig() IoTConfig {
	return IoTConfig{NumFeatures: 4, NumClasses: 2, Overlap: 0.93}
}

// KMeansIoTConfig returns the Table 5 KMeans configuration (11 features,
// 5 device categories).
func KMeansIoTConfig() IoTConfig {
	return IoTConfig{NumFeatures: 11, NumClasses: 5, Overlap: 0.3}
}

// IoTGenerator draws labelled IoT device-traffic samples. Each class is a
// Gaussian cluster whose centre is placed on a scaled simplex; Overlap
// widens the clusters relative to their separation.
type IoTGenerator struct {
	cfg     IoTConfig
	centres []tensor.Vec
	sigma   float64
	rng     *rand.Rand
}

// NewIoTGenerator validates cfg and builds a generator.
func NewIoTGenerator(cfg IoTConfig, rng *rand.Rand) (*IoTGenerator, error) {
	if cfg.NumFeatures <= 0 {
		return nil, fmt.Errorf("dataset: NumFeatures must be positive, got %d", cfg.NumFeatures)
	}
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("dataset: NumClasses must be >= 2, got %d", cfg.NumClasses)
	}
	if cfg.Overlap < 0 || cfg.Overlap >= 1 {
		return nil, fmt.Errorf("dataset: Overlap must be in [0,1), got %v", cfg.Overlap)
	}
	g := &IoTGenerator{cfg: cfg, rng: rng}
	// Class centres: deterministic pseudo-random directions at unit
	// separation, derived from a fixed internal source so the geometry does
	// not depend on the caller's rng state.
	geo := rand.New(rand.NewSource(42))
	for c := 0; c < cfg.NumClasses; c++ {
		centre := make(tensor.Vec, cfg.NumFeatures)
		for f := range centre {
			centre[f] = float32(geo.NormFloat64())
		}
		g.centres = append(g.centres, centre)
	}
	// sigma grows with overlap: at Overlap=0 clusters are tight (~0.2
	// separation units); as Overlap→1 they merge.
	g.sigma = 0.2 + 1.6*cfg.Overlap
	return g, nil
}

// Sample draws one labelled feature vector.
func (g *IoTGenerator) Sample() (tensor.Vec, int) {
	class := g.rng.Intn(g.cfg.NumClasses)
	x := make(tensor.Vec, g.cfg.NumFeatures)
	for f := range x {
		x[f] = g.centres[class][f] + float32(g.rng.NormFloat64()*g.sigma)
	}
	return x, class
}

// Samples draws n labelled vectors.
func (g *IoTGenerator) Samples(n int) ([]tensor.Vec, []int) {
	X := make([]tensor.Vec, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		X[i], y[i] = g.Sample()
	}
	return X, y
}
