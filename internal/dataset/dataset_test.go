package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestAnomalyConfigValidation(t *testing.T) {
	bad := []AnomalyConfig{
		{NumFeatures: 0, AnomalyFraction: 0.3, Separation: 1},
		{NumFeatures: 9, AnomalyFraction: 0.3, Separation: 1},
		{NumFeatures: 6, AnomalyFraction: 0, Separation: 1},
		{NumFeatures: 6, AnomalyFraction: 1, Separation: 1},
		{NumFeatures: 6, AnomalyFraction: 0.3, Separation: 0},
	}
	rng := rand.New(rand.NewSource(1))
	for i, cfg := range bad {
		if _, err := NewAnomalyGenerator(cfg, rng); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := NewAnomalyGenerator(DefaultAnomalyConfig(), rng); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestAnomalyFractionRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := NewAnomalyGenerator(DefaultAnomalyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(20000)
	anom := 0
	for _, r := range recs {
		if r.Anomalous() {
			anom++
		}
	}
	frac := float64(anom) / float64(len(recs))
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("anomaly fraction = %v, want ~0.3", frac)
	}
}

func TestFeatureRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := NewAnomalyGenerator(DefaultAnomalyConfig(), rng)
	for _, r := range g.Records(5000) {
		if len(r.Features) != NumAnomalyFeatures {
			t.Fatalf("feature count = %d", len(r.Features))
		}
		for _, f := range r.Features {
			if f < 0 || f > 8 {
				t.Fatalf("feature %v outside [0,8]", f)
			}
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// DoS flows should have clearly smaller dst_bytes (feature 2) than
	// benign on average — the generator encodes that structure.
	rng := rand.New(rand.NewSource(4))
	g, _ := NewAnomalyGenerator(DefaultAnomalyConfig(), rng)
	var benign, dos float64
	nb, nd := 0, 0
	for i := 0; i < 4000; i++ {
		r := g.Record()
		switch r.Class {
		case Benign:
			benign += float64(r.Features[2])
			nb++
		case DoS:
			dos += float64(r.Features[2])
			nd++
		}
	}
	if nb == 0 || nd == 0 {
		t.Fatal("classes not sampled")
	}
	if benign/float64(nb) <= dos/float64(nd) {
		t.Errorf("benign dst_bytes mean %v should exceed DoS mean %v",
			benign/float64(nb), dos/float64(nd))
	}
}

func TestRecordOfClass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := NewAnomalyGenerator(DefaultAnomalyConfig(), rng)
	for c := Benign; c < numClasses; c++ {
		r := g.RecordOfClass(c)
		if r.Class != c {
			t.Errorf("RecordOfClass(%v).Class = %v", c, r.Class)
		}
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{Benign: "benign", DoS: "dos", Probe: "probe", U2R: "u2r", R2L: "r2l"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if Benign.Anomalous() {
		t.Error("benign should not be anomalous")
	}
	if !DoS.Anomalous() {
		t.Error("DoS should be anomalous")
	}
}

func TestSplit(t *testing.T) {
	recs := []Record{
		{Features: []float32{1}, Class: Benign},
		{Features: []float32{2}, Class: DoS},
	}
	X, y := Split(recs)
	if len(X) != 2 || y[0] != 0 || y[1] != 1 {
		t.Errorf("Split = %v %v", X, y)
	}
	_, ypm := SplitPM(recs)
	if ypm[0] != -1 || ypm[1] != 1 {
		t.Errorf("SplitPM = %v", ypm)
	}
}

func TestIoTConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bad := []IoTConfig{
		{NumFeatures: 0, NumClasses: 2, Overlap: 0.5},
		{NumFeatures: 4, NumClasses: 1, Overlap: 0.5},
		{NumFeatures: 4, NumClasses: 2, Overlap: 1},
		{NumFeatures: 4, NumClasses: 2, Overlap: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewIoTGenerator(cfg, rng); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestIoTSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := NewIoTGenerator(DefaultIoTConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	X, y := g.Samples(1000)
	if len(X) != 1000 || len(y) != 1000 {
		t.Fatal("wrong sample count")
	}
	seen := map[int]int{}
	for i := range X {
		if len(X[i]) != 4 {
			t.Fatalf("feature count = %d", len(X[i]))
		}
		seen[y[i]]++
	}
	if len(seen) != 2 {
		t.Errorf("classes seen = %v", seen)
	}
}

func TestIoTGeometryIndependentOfCallerRNG(t *testing.T) {
	g1, _ := NewIoTGenerator(DefaultIoTConfig(), rand.New(rand.NewSource(1)))
	g2, _ := NewIoTGenerator(DefaultIoTConfig(), rand.New(rand.NewSource(99)))
	for i := range g1.centres {
		for f := range g1.centres[i] {
			if g1.centres[i][f] != g2.centres[i][f] {
				t.Fatal("class geometry should not depend on caller rng")
			}
		}
	}
}

func TestTraceGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tg, err := NewTraceGenerator(DefaultTraceConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	flows := map[FiveTuple]bool{}
	anom := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := tg.Next()
		if p.Time <= prev {
			t.Fatalf("time went backwards: %v after %v", p.Time, prev)
		}
		prev = p.Time
		if p.Size < 64 || p.Size > 1500 {
			t.Fatalf("packet size %d out of range", p.Size)
		}
		flows[p.Flow.Tuple] = true
		if p.Flow.Record.Anomalous() {
			anom++
		}
	}
	if len(flows) < 100 {
		t.Errorf("flow diversity too low: %d", len(flows))
	}
	frac := float64(anom) / n
	if frac < 0.1 || frac > 0.8 {
		t.Errorf("anomalous packet fraction = %v", frac)
	}
	// Aggregate rate should be near the configured one.
	rate := float64(n) / tg.Now()
	if rate < 0.8*800_000 || rate > 1.2*800_000 {
		t.Errorf("packet rate = %v, want ~800k", rate)
	}
}

func TestTraceConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultTraceConfig()
	cfg.PacketRate = 0
	if _, err := NewTraceGenerator(cfg, rng); err == nil {
		t.Error("zero rate should fail")
	}
	cfg = DefaultTraceConfig()
	cfg.ActiveFlows = 0
	if _, err := NewTraceGenerator(cfg, rng); err == nil {
		t.Error("zero flows should fail")
	}
	cfg = DefaultTraceConfig()
	cfg.MeanFlowPackets = 0
	if _, err := NewTraceGenerator(cfg, rng); err == nil {
		t.Error("zero flow length should fail")
	}
	cfg = DefaultTraceConfig()
	cfg.Anomaly.NumFeatures = 99
	if _, err := NewTraceGenerator(cfg, rng); err == nil {
		t.Error("bad anomaly config should fail")
	}
}

func TestFiveTupleString(t *testing.T) {
	tu := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if tu.String() == "" {
		t.Error("empty String()")
	}
}
