package lower

import (
	"math/rand"
	"testing"

	"taurus/internal/dataset"
	"taurus/internal/fixed"
	"taurus/internal/ml"
)

// benchSVM trains a small RBF SVM for the reference-decision benchmarks.
func benchSVM(b *testing.B) (*ml.SVM, fixed.Quantizer, []float32) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	gen, err := dataset.NewAnomalyGenerator(dataset.AnomalyConfig{
		NumFeatures: 8, AnomalyFraction: 0.4, Separation: 1.4,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	X, y := dataset.SplitPM(gen.Records(250))
	svm, err := ml.TrainSVM(X, y, ml.DefaultSVMConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	var flat []float32
	for _, x := range X {
		flat = append(flat, x...)
	}
	return svm, fixed.QuantizerFor(flat), X[0]
}

// BenchmarkSVMReferenceDecision guards the one-shot reference path: it must
// stay a direct arithmetic evaluation, not a per-call graph build plus
// evaluator allocation (the regression this benchmark was added against).
func BenchmarkSVMReferenceDecision(b *testing.B) {
	svm, inQ, x := benchSVM(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVMReferenceDecision(svm, inQ, 16, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMReferenceCached is the per-deployment shape: quantise once,
// score many samples. The per-call path must not allocate.
func BenchmarkSVMReferenceCached(b *testing.B) {
	svm, inQ, x := benchSVM(b)
	ref, err := NewSVMReference(svm, inQ, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Decision(x); err != nil {
			b.Fatal(err)
		}
	}
}
