package lower

import (
	"fmt"
	"math"

	"taurus/internal/fixed"
	mr "taurus/internal/mapreduce"
)

// Microbenchmark graph builders (§5.1.3, Figure 11, Table 6, Table 7).
//
// The nonlinear micro graphs work on a wider internal scale (1/1024) than
// the 8-bit storage format: CU pipeline registers are wider than a lane, and
// only values crossing MU/PHV boundaries are 8-bit. Inputs arrive as
// int8-coded features at scale 1/16 (Q4.4) and outputs are int8 codes at
// scale 1/127.

const (
	// MicroInScale is the input code scale (Q4.4 features from the MATs).
	MicroInScale = 1.0 / 16
	// MicroScale is the internal working scale of the nonlinear chains.
	MicroScale = 1.0 / 1024
	// MicroOutScale is the output code scale of the nonlinear benches.
	MicroOutScale = 1.0 / 127
)

func mustMult(f float64) fixed.Multiplier {
	m, err := fixed.NewMultiplier(f)
	if err != nil {
		panic(fmt.Sprintf("lower: bad multiplier %v: %v", f, err))
	}
	return m
}

// code converts a real constant to the micro working scale.
func code(v float64) int32 { return int32(math.RoundToEven(v / MicroScale)) }

// InnerProduct builds the width-element dot product of Table 6: one Map(Mul)
// and one Reduce(Add) — the minimum-latency CU program (5 cycles in a
// 16-lane CU).
func InnerProduct(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("inner-product-%d", width))
	x := b.Input("x", width)
	w := make([]int32, width)
	for i := range w {
		w[i] = int32((i*7)%15 - 7) // deterministic non-trivial weights
	}
	wv := b.Const("w", w)
	b.Output(b.DotProduct(wv, x))
	return b.Build()
}

// Conv1D builds the one-dimensional convolution of Table 6/7: `outputs`
// windows of size `kernel` over an input of width outputs+kernel-1. Each
// output is a small inner product; the compiler's pack factor controls how
// many outputs share a CU (Table 7's unrolling study).
func Conv1D(outputs, kernel int) (*mr.Graph, error) {
	if outputs <= 0 || kernel <= 0 {
		return nil, fmt.Errorf("lower: bad conv1d dims %d/%d", outputs, kernel)
	}
	b := mr.NewBuilder(fmt.Sprintf("conv1d-%dx%d", outputs, kernel))
	x := b.Input("x", outputs+kernel-1)
	k := make([]int32, kernel)
	for i := range k {
		k[i] = int32(i*3 + 1)
	}
	outs := make([]mr.Value, outputs)
	for o := 0; o < outputs; o++ {
		win := b.Slice(x, o, kernel)
		kv := b.Const(fmt.Sprintf("k%d", o), k)
		outs[o] = b.DotProduct(kv, win)
	}
	b.Output(b.Concat(outs...))
	return b.Build()
}

// ReLUBench maps ReLU over width lanes.
func ReLUBench(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("relu-%d", width))
	x := b.Input("x", width)
	b.Output(b.Unary(mr.UReLU, x))
	return b.Build()
}

// LeakyReLUBench maps LeakyReLU over width lanes.
func LeakyReLUBench(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("leakyrelu-%d", width))
	x := b.Input("x", width)
	b.Output(b.Unary(mr.ULeakyReLU, x))
	return b.Build()
}

// widen converts int8 input codes (scale 1/16) to the working scale with an
// integer gain (exact: 1/16 -> 1/1024 is x64).
func widen(b *mr.Builder, x mr.Value, gain int32) mr.Value {
	return b.Map(mr.MMul, x, b.Scalar("widen", gain))
}

// expTaylorChain appends a degree-7 Horner evaluation of e^v to the builder,
// where v is already at MicroScale; the result is at MicroScale. This is the
// "long basic block" (§4) the compiler must split across several CUs.
func expTaylorChain(b *mr.Builder, v mr.Value) mr.Value {
	v = b.Map(mr.MMin, v, b.Scalar("clamp_hi", code(4)))
	v = b.Map(mr.MMax, v, b.Scalar("clamp_lo", code(-4)))
	coeffs := []float64{1.0 / 5040, 1.0 / 720, 1.0 / 120, 1.0 / 24, 1.0 / 6, 0.5, 1, 1}
	// Splat the leading coefficient across the lanes.
	ones := make([]int32, v.Width())
	for i := range ones {
		ones[i] = 1
	}
	p := b.Map(mr.MMul, b.Const("splat", ones), b.Scalar("c7", code(coeffs[0])))
	for i := 1; i < len(coeffs); i++ {
		p = b.Map(mr.MMul, p, v)
		p = b.Scale(p, mustMult(MicroScale)) // s^2 -> s
		p = b.Map(mr.MAdd, p, b.Scalar(fmt.Sprintf("c%d", 7-i), code(coeffs[i])))
	}
	// Taylor truncation can dip below zero near -4; exp is positive.
	return b.Unary(mr.UReLU, p)
}

// recipLUT tabulates 1/v for v >= 1 at MicroScale (bucketed by 16 codes),
// producing int8 outputs at MicroOutScale.
func recipLUT() *mr.LUT {
	l := &mr.LUT{Mult: mustMult(1.0 / 16)}
	for i := 0; i < mr.LUTSize; i++ {
		idx := i - mr.LUTSize/2
		if idx <= 0 {
			l.Table[i] = 127
			continue
		}
		v := float64(idx) * 16 * MicroScale
		if v < 1 {
			l.Table[i] = 127
			continue
		}
		l.Table[i] = int8(math.RoundToEven((1 / v) / MicroOutScale))
	}
	return l
}

// TanhExpBench builds tanh(x) = (e^{2x}-1)/(e^{2x}+1) with a Taylor
// exponential and a reciprocal LUT (Table 6's TanhExp row).
func TanhExpBench(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("tanhexp-%d", width))
	x8 := b.Input("x", width)
	v := widen(b, x8, 128) // 2x at MicroScale
	e := expTaylorChain(b, v)
	one := b.Scalar("one", code(1))
	num := b.Map(mr.MSub, e, one)
	den := b.Map(mr.MAdd, e, one)
	rec := b.ApplyLUT(den, recipLUT()) // codes at MicroOutScale
	prod := b.Map(mr.MMul, num, rec)   // scale MicroScale*MicroOutScale
	out := b.Requant(prod, mustMult(MicroScale))
	b.Output(out)
	return b.Build()
}

// SigmoidExpBench builds sigmoid(x) = 1/(1 + e^{-x}) (Table 6's SigmoidExp
// row).
func SigmoidExpBench(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("sigmoidexp-%d", width))
	x8 := b.Input("x", width)
	v := widen(b, x8, -64) // -x at MicroScale
	e := expTaylorChain(b, v)
	den := b.Map(mr.MAdd, e, b.Scalar("one", code(1)))
	b.Output(b.ApplyLUT(den, recipLUT()))
	return b.Build()
}

// tanhPWChain appends a 7-segment piecewise-linear tanh built from min/max
// of lines (concave side uses min, convex side max, odd symmetry):
// clamp(max(min(x, 0.55x+0.22, 0.25x+0.6), 0.55x-0.22, 0.25x-0.6), -1, 1).
// Input/output at MicroScale.
func tanhPWChain(b *mr.Builder, x mr.Value) mr.Value {
	m1 := b.Scale(b.Map(mr.MMul, x, b.Scalar("k55", code(0.55))), mustMult(MicroScale))
	m2 := b.Scale(b.Map(mr.MMul, x, b.Scalar("k25", code(0.25))), mustMult(MicroScale))
	a := b.Map(mr.MAdd, m1, b.Scalar("o22", code(0.22)))
	bb := b.Map(mr.MAdd, m2, b.Scalar("o60", code(0.60)))
	c := b.Map(mr.MSub, m1, b.Scalar("o22n", code(0.22)))
	d := b.Map(mr.MSub, m2, b.Scalar("o60n", code(0.60)))
	y := b.Map(mr.MMin, x, a)
	y = b.Map(mr.MMin, y, bb)
	y = b.Map(mr.MMax, y, c)
	y = b.Map(mr.MMax, y, d)
	y = b.Map(mr.MMin, y, b.Scalar("pos1", code(1)))
	y = b.Map(mr.MMax, y, b.Scalar("neg1", code(-1)))
	return y
}

// TanhPWBench builds the piecewise-linear tanh (Table 6's TanhPW row).
func TanhPWBench(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("tanhpw-%d", width))
	x8 := b.Input("x", width)
	x := widen(b, x8, 64)
	y := tanhPWChain(b, x)
	b.Output(b.Requant(y, mustMult(MicroScale*127)))
	return b.Build()
}

// SigmoidPWBench builds sigmoid(x) ~= (tanhPW(x/2)+1)/2 (Table 6's
// SigmoidPW row); the extra scale/shift ops make it slightly larger than
// TanhPW, as in the paper.
func SigmoidPWBench(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("sigmoidpw-%d", width))
	x8 := b.Input("x", width)
	x := widen(b, x8, 32) // x/2 at MicroScale
	y := tanhPWChain(b, x)
	y = b.Map(mr.MAdd, y, b.Scalar("one", code(1)))
	// (t+1)/2 in [0,2] at MicroScale -> int8 at MicroOutScale.
	b.Output(b.Requant(y, mustMult(MicroScale*127/2)))
	return b.Build()
}

// ActLUTBench builds the pure lookup-table activation (Table 6's ActLUT
// row): one index computation and one MU read, tabulating tanh.
func ActLUTBench(width int) (*mr.Graph, error) {
	b := mr.NewBuilder(fmt.Sprintf("actlut-%d", width))
	x8 := b.Input("x", width)
	l := &mr.LUT{Mult: mustMult(MicroInScale / (8.0 / (mr.LUTSize/2 - 1)))}
	for i := 0; i < mr.LUTSize; i++ {
		pre := float64(i-mr.LUTSize/2) * (8.0 / (mr.LUTSize/2 - 1))
		l.Table[i] = int8(math.RoundToEven(math.Tanh(pre) / MicroOutScale))
	}
	b.Output(b.ApplyLUT(x8, l))
	return b.Build()
}

// Microbenchmarks returns the full Table 6 suite keyed by the paper's row
// names, all at the given vector width.
func Microbenchmarks(width int) (map[string]*mr.Graph, error) {
	out := map[string]*mr.Graph{}
	type entry struct {
		name  string
		build func(int) (*mr.Graph, error)
	}
	for _, e := range []entry{
		{"InnerProduct", InnerProduct},
		{"ReLU", ReLUBench},
		{"LeakyReLU", LeakyReLUBench},
		{"TanhExp", TanhExpBench},
		{"SigmoidExp", SigmoidExpBench},
		{"TanhPW", TanhPWBench},
		{"SigmoidPW", SigmoidPWBench},
		{"ActLUT", ActLUTBench},
	} {
		g, err := e.build(width)
		if err != nil {
			return nil, fmt.Errorf("lower: %s: %w", e.name, err)
		}
		out[e.name] = g
	}
	conv, err := Conv1D(8, 2)
	if err != nil {
		return nil, fmt.Errorf("lower: Conv1D: %w", err)
	}
	out["Conv1D"] = conv
	return out, nil
}
