// Package lower translates trained, quantised models into MapReduce dataflow
// graphs — the role the Spatial DSL frontend plays in the paper (§4
// "Target-Dependent Compilation"): models become nested Map/Reduce patterns
// that internal/compiler then places onto the CGRA grid.
//
// Every lowering preserves the quantised reference semantics: evaluating the
// produced graph on input codes gives bit-identical results to the
// corresponding internal/ml quantised model (tested in lower_test.go), so
// the CGRA data plane and the control-plane reference can never diverge.
package lower

import (
	"fmt"
	"math"

	"taurus/internal/fixed"
	mr "taurus/internal/mapreduce"
	"taurus/internal/ml"
)

// DNN lowers a quantised feed-forward network. Graph input: the int8 feature
// codes (width = first layer's fan-in). Graph output: the final layer's
// output codes.
func DNN(q *ml.QuantizedDNN, name string) (*mr.Graph, error) {
	if len(q.Layers) == 0 {
		return nil, fmt.Errorf("lower: DNN has no layers")
	}
	b := mr.NewBuilder(name)
	x := b.Input("features", q.Layers[0].In())
	for li, l := range q.Layers {
		// One dot product per neuron: the inner Map/Reduce pair of Figure 4.
		neurons := make([]mr.Value, l.Out())
		for r := 0; r < l.Out(); r++ {
			w := b.ConstInt8(fmt.Sprintf("W%d_%d", li, r), l.W[r])
			acc := b.DotProduct(w, x)
			acc = b.Map(mr.MAdd, acc, b.Scalar(fmt.Sprintf("b%d_%d", li, r), l.B[r]))
			neurons[r] = acc
		}
		z := neurons[0]
		if len(neurons) > 1 {
			z = b.Concat(neurons...)
		}
		// The outer map applies the activation across the layer (Figure 4's
		// final Map over LinearResults).
		switch l.Act {
		case ml.ReLU:
			z = b.Unary(mr.UReLU, z)
			z = b.Requant(z, l.Requant)
		case ml.LeakyReLU:
			z = b.Unary(mr.ULeakyReLU, z)
			z = b.Requant(z, l.Requant)
		case ml.Linear:
			z = b.Requant(z, l.Requant)
		case ml.Sigmoid, ml.Tanh:
			z = b.ApplyLUT(z, lutFromML(l.ActTable))
		default:
			return nil, fmt.Errorf("lower: unsupported activation %v", l.Act)
		}
		x = z
	}
	b.Output(x)
	return b.Build()
}

// lutFromML converts the ml-side activation table to the IR's LUT payload
// (identical layout, so the two paths are bit-exact).
func lutFromML(t *ml.QuantLUT) *mr.LUT {
	l := &mr.LUT{Mult: t.IdxMult}
	copy(l.Table[:], t.Table[:])
	return l
}

// KMeans lowers nearest-centroid classification: one squared-distance
// Map/Reduce per centroid, then an ArgMin reduction (§3.3.2's eRSS shape).
// inQ is the feature quantiser shared with the preprocessing MATs; argmin
// over quantised distances equals argmin over real distances up to
// quantisation error. The graph outputs the winning cluster index.
func KMeans(km *ml.KMeans, inQ fixed.Quantizer, name string) (*mr.Graph, error) {
	if km.K() == 0 {
		return nil, fmt.Errorf("lower: KMeans has no centroids")
	}
	dim := len(km.Centroids[0])
	b := mr.NewBuilder(name)
	x := b.Input("features", dim)
	dists := make([]mr.Value, km.K())
	for c, centroid := range km.Centroids {
		codes := inQ.QuantizeSlice(centroid)
		cv := b.ConstInt8(fmt.Sprintf("centroid%d", c), codes)
		diff := b.Map(mr.MSub, x, cv)
		sq := b.Map(mr.MMul, diff, diff)
		dists[c] = b.Reduce(mr.RAdd, sq)
	}
	all := b.Concat(dists...)
	class := b.Reduce(mr.RArgMin, all)
	b.Output(class)
	return b.Build()
}

// QuantizeKMeansPredict is the reference for the lowered KMeans graph:
// nearest centroid measured in the quantised code domain.
func QuantizeKMeansPredict(km *ml.KMeans, inQ fixed.Quantizer, x []float32) int {
	codes := inQ.QuantizeSlice(x)
	best, bestD := 0, int64(math.MaxInt64)
	for c, centroid := range km.Centroids {
		cc := inQ.QuantizeSlice(centroid)
		var d int64
		for i := range codes {
			diff := int64(codes[i]) - int64(cc[i])
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// svmPlan holds the quantised parameters of a lowered SVM: the int8 support
// vectors, the kernel lookup table, the quantised dual coefficients and the
// bias code. The graph builder (SVM) and the direct reference evaluator
// (SVMReference) both derive from one plan, so the two paths cannot drift
// apart.
type svmPlan struct {
	inQ     fixed.Quantizer
	svCodes [][]int8
	lut     *mr.LUT
	coef    []int8
	bias    int32
}

// planSVM compresses s to maxSV support vectors and quantises every deployed
// parameter.
func planSVM(s *ml.SVM, inQ fixed.Quantizer, maxSV int) (*svmPlan, error) {
	if len(s.SupportVecs) == 0 {
		return nil, fmt.Errorf("lower: SVM has no support vectors")
	}
	s = s.Compress(maxSV)

	// Kernel LUT: entry(idx) = round(127 * exp(-pre)) with pre = idx *
	// preStep covering [0, lutPreMax].
	const lutPreMax = 8.0
	preStep := lutPreMax / float64(mr.LUTSize/2-1)
	gammaCodes := float64(s.Gamma) * inQ.Scale * inQ.Scale // real pre per code-distance unit
	idxMult, err := fixed.NewMultiplier(gammaCodes / preStep)
	if err != nil {
		return nil, fmt.Errorf("lower: SVM kernel LUT multiplier: %w", err)
	}
	lut := &mr.LUT{Mult: idxMult}
	for i := 0; i < mr.LUTSize; i++ {
		idx := i - mr.LUTSize/2
		if idx < 0 {
			lut.Table[i] = 127 // distances are non-negative; unreachable half
			continue
		}
		lut.Table[i] = int8(math.RoundToEven(127 * math.Exp(-float64(idx)*preStep)))
	}

	// Dual coefficients quantised symmetrically.
	alphaQ := fixed.QuantizerFor(s.Coeffs)
	// Bias at the accumulator scale alphaScale * (1/127).
	accScale := alphaQ.Scale / 127
	p := &svmPlan{
		inQ:  inQ,
		lut:  lut,
		coef: alphaQ.QuantizeSlice(s.Coeffs),
		bias: int32(math.RoundToEven(float64(s.Bias) / accScale)),
	}
	for _, sv := range s.SupportVecs {
		p.svCodes = append(p.svCodes, inQ.QuantizeSlice(sv))
	}
	return p, nil
}

// graph builds the MapReduce program for the plan.
func (p *svmPlan) graph(name string) (*mr.Graph, error) {
	dim := len(p.svCodes[0])
	b := mr.NewBuilder(name)
	x := b.Input("features", dim)
	kernels := make([]mr.Value, len(p.svCodes))
	for i, codes := range p.svCodes {
		cv := b.ConstInt8(fmt.Sprintf("sv%d", i), codes)
		diff := b.Map(mr.MSub, x, cv)
		sq := b.Map(mr.MMul, diff, diff)
		d := b.Reduce(mr.RAdd, sq)
		kernels[i] = b.ApplyLUT(d, p.lut)
	}
	kvec := b.Concat(kernels...)
	coeffs := b.ConstInt8("alpha", p.coef)
	dec := b.DotProduct(coeffs, kvec)
	dec = b.Map(mr.MAdd, dec, b.Scalar("bias", p.bias))
	b.Output(dec)
	return b.Build()
}

// reference builds the direct evaluator for the plan.
func (p *svmPlan) reference() *SVMReference {
	dim := len(p.svCodes[0])
	return &SVMReference{
		plan: p,
		in:   make([]int32, dim),
		sq:   make([]int32, dim),
		ks:   make([]int32, len(p.svCodes)),
	}
}

// SVM lowers an RBF SVM: per support vector a squared-distance Map/Reduce,
// an exp(-gamma*d) kernel LUT, then a weighted sum (dot product with the
// dual coefficients) plus bias. Output: the sign-significant decision
// accumulator (positive = anomalous). maxSV caps the support set via
// (*ml.SVM).Compress to fit the grid.
func SVM(s *ml.SVM, inQ fixed.Quantizer, maxSV int, name string) (*mr.Graph, error) {
	p, err := planSVM(s, inQ, maxSV)
	if err != nil {
		return nil, err
	}
	return p.graph(name)
}

// SVMWithReference lowers the SVM and returns the matching reference
// evaluator, both derived from one quantisation plan — the pair a
// deployment wants, and the only construction in which graph/reference
// parity is guaranteed by sharing rather than by determinism.
func SVMWithReference(s *ml.SVM, inQ fixed.Quantizer, maxSV int, name string) (*mr.Graph, *SVMReference, error) {
	p, err := planSVM(s, inQ, maxSV)
	if err != nil {
		return nil, nil, err
	}
	g, err := p.graph(name)
	if err != nil {
		return nil, nil, err
	}
	return g, p.reference(), nil
}

// SVMReference evaluates the exact quantised arithmetic of the lowered SVM
// graph — same IR operators, same LUT, same saturation — without building or
// interpreting a graph. Build it once per deployment and call Decision per
// sample; this is what the control plane uses for parity checks against the
// data plane's verdicts.
type SVMReference struct {
	plan *svmPlan
	in   []int32 // scratch: quantised input codes
	sq   []int32 // scratch: per-lane squared differences
	ks   []int32 // scratch: per-SV kernel codes
}

// NewSVMReference quantises s against inQ (capped at maxSV support vectors)
// and returns a reusable reference evaluator.
func NewSVMReference(s *ml.SVM, inQ fixed.Quantizer, maxSV int) (*SVMReference, error) {
	p, err := planSVM(s, inQ, maxSV)
	if err != nil {
		return nil, err
	}
	return p.reference(), nil
}

// NumFeatures returns the model's input width.
func (r *SVMReference) NumFeatures() int { return len(r.in) }

// Decision returns the quantised decision code for x — bit-identical to the
// single output lane of the lowered graph evaluated on the same features. It
// performs no heap allocation.
func (r *SVMReference) Decision(x []float32) (int32, error) {
	if len(x) != len(r.in) {
		return 0, fmt.Errorf("lower: SVM reference got %d features, want %d", len(x), len(r.in))
	}
	p := r.plan
	for i, v := range x {
		r.in[i] = int32(p.inQ.Quantize(v))
	}
	// Mirror the graph node-for-node via the IR's own operator semantics:
	// Map(Sub), Map(Mul), Reduce(Add), LUT per support vector, then the
	// coefficient dot product and the bias add.
	for s, codes := range p.svCodes {
		for i, c := range codes {
			d := mr.MSub.Apply(r.in[i], int32(c))
			r.sq[i] = mr.MMul.Apply(d, d)
		}
		r.ks[s] = p.lut.Apply(mr.RAdd.Apply(r.sq))
	}
	for s := range r.ks {
		r.ks[s] = mr.MMul.Apply(int32(p.coef[s]), r.ks[s])
	}
	return mr.MAdd.Apply(mr.RAdd.Apply(r.ks), p.bias), nil
}

// SVMReferenceDecision evaluates the same quantised arithmetic the lowered
// SVM graph computes, for bit-exactness tests and control-plane parity. It
// computes the arithmetic directly — no graph construction or evaluator — so
// it is cheap enough to call per sample; callers scoring many samples should
// still build one SVMReference and reuse it.
func SVMReferenceDecision(s *ml.SVM, inQ fixed.Quantizer, maxSV int, x []float32) (int32, error) {
	ref, err := NewSVMReference(s, inQ, maxSV)
	if err != nil {
		return 0, err
	}
	return ref.Decision(x)
}
