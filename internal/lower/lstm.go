package lower

import (
	"fmt"
	"math"

	"taurus/internal/fixed"
	mr "taurus/internal/mapreduce"
	"taurus/internal/ml"
	"taurus/internal/tensor"
)

// LSTM scale conventions for the quantised data-plane step. Gate outputs and
// hidden state live in [-1, 1] (scale 1/127); the cell state is clamped to
// [-4, 4] (scale 4/127). These are the standard choices for int8 LSTMs.
const (
	lstmHScale = 1.0 / 127
	lstmCScale = 4.0 / 127
)

// LSTMStep lowers one step of the Indigo LSTM (§5.1.2) into a MapReduce
// graph. Inputs (in order): x codes (width In, quantised by inQ), h codes
// (width Hidden, scale 1/127), c codes (width Hidden, scale 4/127).
// Outputs (in order): action logits (width Out, 32-bit accumulators), new h
// codes, new c codes. State codes are stored in MU registers between
// packets by the surrounding pipeline.
func LSTMStep(l *ml.LSTM, inQ fixed.Quantizer, name string) (*mr.Graph, error) {
	b := mr.NewBuilder(name)
	x := b.Input("x", l.In)
	h := b.Input("h", l.Hidden)
	c := b.Input("c", l.Hidden)

	// Bring x into the h scale so one weight scale covers the concatenated
	// gate input.
	xRescale, err := fixed.NewMultiplier(inQ.Scale / lstmHScale)
	if err != nil {
		return nil, fmt.Errorf("lower: LSTM x rescale: %w", err)
	}
	xh := b.Concat(b.Requant(x, xRescale), h)

	// Per-gate weight quantisation.
	type gateSpec struct {
		name string
		w    [][]float32
		bias []float32
		act  ml.Activation
	}
	gates := []gateSpec{
		{"i", matRows(l.Wi), l.Bi, ml.Sigmoid},
		{"f", matRows(l.Wf), l.Bf, ml.Sigmoid},
		{"g", matRows(l.Wg), l.Bg, ml.Tanh},
		{"o", matRows(l.Wo), l.Bo, ml.Sigmoid},
	}
	gateVals := make(map[string]mr.Value, 4)
	for _, gs := range gates {
		flat := flatten(gs.w)
		wq := fixed.QuantizerFor(flat)
		accScale := lstmHScale * wq.Scale
		lut, err := ml.NewQuantLUT(gs.act, accScale, fixed.Quantizer{Scale: lstmHScale})
		if err != nil {
			return nil, fmt.Errorf("lower: LSTM gate %s LUT: %w", gs.name, err)
		}
		neurons := make([]mr.Value, l.Hidden)
		for r := 0; r < l.Hidden; r++ {
			codes := wq.QuantizeSlice(gs.w[r])
			wv := b.ConstInt8(fmt.Sprintf("W%s_%d", gs.name, r), codes)
			acc := b.DotProduct(wv, xh)
			biasCode := int32(math.RoundToEven(float64(gs.bias[r]) / accScale))
			acc = b.Map(mr.MAdd, acc, b.Scalar(fmt.Sprintf("b%s_%d", gs.name, r), biasCode))
			neurons[r] = acc
		}
		z := b.Concat(neurons...)
		gateVals[gs.name] = b.ApplyLUT(z, lutFromML(lut))
	}

	// c' = f*c + i*g, all requantised into the c scale.
	fc := b.Map(mr.MMul, gateVals["f"], c) // scale h*c
	ig := b.Map(mr.MMul, gateVals["i"], gateVals["g"])
	igAlign, err := fixed.NewMultiplier(lstmHScale / lstmCScale) // h*h -> h*c
	if err != nil {
		return nil, fmt.Errorf("lower: LSTM ig align: %w", err)
	}
	igAligned := b.Requant(ig, igAlign)
	// igAligned codes are int8 at scale h*c; fc is a 16-bit product at the
	// same scale, so a plain add combines them.
	cNew32 := b.Map(mr.MAdd, fc, igAligned)
	cFinal, err := fixed.NewMultiplier(lstmHScale) // h*c -> c
	if err != nil {
		return nil, fmt.Errorf("lower: LSTM c requant: %w", err)
	}
	cNew := b.Requant(cNew32, cFinal)

	// h' = o * tanh(c'), via a tanh LUT over c codes.
	tanhLUT, err := ml.NewQuantLUT(ml.Tanh, lstmCScale, fixed.Quantizer{Scale: lstmHScale})
	if err != nil {
		return nil, fmt.Errorf("lower: LSTM tanh(c) LUT: %w", err)
	}
	tc := b.ApplyLUT(cNew, lutFromML(tanhLUT))
	oh := b.Map(mr.MMul, gateVals["o"], tc)        // scale h*h
	hFinal, err := fixed.NewMultiplier(lstmHScale) // h*h -> h
	if err != nil {
		return nil, fmt.Errorf("lower: LSTM h requant: %w", err)
	}
	hNew := b.Requant(oh, hFinal)

	// Readout logits = Wy*h + By (left as 32-bit accumulators; the
	// postprocessing MAT takes the argmax).
	wyFlat := flatten(matRows(l.Wy))
	wyq := fixed.QuantizerFor(wyFlat)
	accScale := lstmHScale * wyq.Scale
	logits := make([]mr.Value, l.Out)
	wyRows := matRows(l.Wy)
	for r := 0; r < l.Out; r++ {
		wv := b.ConstInt8(fmt.Sprintf("Wy_%d", r), wyq.QuantizeSlice(wyRows[r]))
		acc := b.DotProduct(wv, hNew)
		biasCode := int32(math.RoundToEven(float64(l.By[r]) / accScale))
		acc = b.Map(mr.MAdd, acc, b.Scalar(fmt.Sprintf("by_%d", r), biasCode))
		logits[r] = acc
	}
	out := b.Concat(logits...)

	b.Output(out, hNew, cNew)
	return b.Build()
}

// matRows converts a tensor matrix into per-row float slices.
func matRows(m tensor.Mat) [][]float32 {
	rows := make([][]float32, m.Rows)
	for r := range rows {
		rows[r] = m.Row(r)
	}
	return rows
}

func flatten(rows [][]float32) []float32 {
	var out []float32
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
