package lower

import (
	"math"
	"math/rand"
	"testing"

	"taurus/internal/dataset"
	"taurus/internal/fixed"
	mr "taurus/internal/mapreduce"
	"taurus/internal/ml"
	"taurus/internal/tensor"
)

// trainAnomalyDNN trains the paper's 6-12-6-3-1 anomaly DNN on synthetic
// KDD-like data and quantises it.
func trainAnomalyDNN(t *testing.T) (*ml.QuantizedDNN, []tensor.Vec) {
	t.Helper()
	rng := rand.New(rand.NewSource(100))
	gen, err := dataset.NewAnomalyGenerator(dataset.DefaultAnomalyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	X, y := dataset.Split(gen.Records(600))
	n := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	tr := ml.NewTrainer(n, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 15}, rng)
	tr.Fit(X, y)
	q, err := ml.Quantize(n, X[:200])
	if err != nil {
		t.Fatal(err)
	}
	return q, X
}

func codesOf(q *ml.QuantizedDNN, x tensor.Vec) []int32 {
	codes := q.InputQ.QuantizeSlice(x)
	out := make([]int32, len(codes))
	for i, c := range codes {
		out[i] = int32(c)
	}
	return out
}

func TestDNNLoweringBitExact(t *testing.T) {
	q, X := trainAnomalyDNN(t)
	g, err := DNN(q, "anomaly-dnn")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:100] {
		want := q.ForwardCodes(q.InputQ.QuantizeSlice(x))
		outs, err := g.Eval(codesOf(q, x))
		if err != nil {
			t.Fatal(err)
		}
		got := outs[0]
		if len(got) != len(want) {
			t.Fatalf("width %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != int32(want[i]) {
				t.Fatalf("lowered DNN diverges at lane %d: %d vs %d", i, got[i], want[i])
			}
		}
	}
}

func TestDNNLoweringEmpty(t *testing.T) {
	if _, err := DNN(&ml.QuantizedDNN{}, "x"); err == nil {
		t.Error("empty DNN should fail")
	}
}

func TestKMeansLoweringMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	gen, err := dataset.NewIoTGenerator(dataset.KMeansIoTConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	X, _ := gen.Samples(400)
	km, err := ml.TrainKMeans(X, 5, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	var flat []float32
	for _, x := range X {
		flat = append(flat, x...)
	}
	inQ := fixed.QuantizerFor(flat)
	g, err := KMeans(km, inQ, "iot-kmeans")
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, x := range X[:200] {
		codes := inQ.QuantizeSlice(x)
		in := make([]int32, len(codes))
		for i, c := range codes {
			in[i] = int32(c)
		}
		outs, err := g.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		gotIdx := int(outs[0][0])
		if gotIdx != QuantizeKMeansPredict(km, inQ, x) {
			t.Fatalf("graph argmin diverges from quantised reference")
		}
		if gotIdx == km.Predict(x) {
			agree++
		}
	}
	// Quantised nearest-centroid should almost always match float.
	if agree < 190 {
		t.Errorf("quantised KMeans agrees with float on %d/200", agree)
	}
}

func TestSVMLoweringSignAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	gen, err := dataset.NewAnomalyGenerator(dataset.AnomalyConfig{
		NumFeatures: 8, AnomalyFraction: 0.4, Separation: 1.4,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	X, y := dataset.SplitPM(gen.Records(250))
	svm, err := ml.TrainSVM(X, y, ml.DefaultSVMConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var flat []float32
	for _, x := range X {
		flat = append(flat, x...)
	}
	inQ := fixed.QuantizerFor(flat)
	g, err := SVM(svm, inQ, 16, "anomaly-svm")
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	n := 200
	compressed := svm.Compress(16)
	for _, x := range X[:n] {
		codes := inQ.QuantizeSlice(x)
		in := make([]int32, len(codes))
		for i, c := range codes {
			in[i] = int32(c)
		}
		outs, err := g.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		// Reference path must be bit-identical.
		ref, err := SVMReferenceDecision(svm, inQ, 16, x)
		if err != nil {
			t.Fatal(err)
		}
		if outs[0][0] != ref {
			t.Fatalf("graph decision %d != reference %d", outs[0][0], ref)
		}
		if (outs[0][0] > 0) == compressed.Predict(x) {
			agree++
		}
	}
	if agree < n*85/100 {
		t.Errorf("quantised SVM agrees with float on %d/%d", agree, n)
	}
}

func TestLSTMLoweringRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	l := ml.NewLSTM(4, 32, 5, rng)
	inQ := fixed.NewQuantizer(1.0)
	g, err := LSTMStep(l, inQ, "indigo-lstm")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drive a few steps through the quantised graph, threading state.
	h := make([]int32, 32)
	c := make([]int32, 32)
	stF := l.ZeroState()
	agreeTop := 0
	const steps = 20
	for s := 0; s < steps; s++ {
		xf := tensor.Vec{
			float32(rng.NormFloat64() * 0.3),
			float32(rng.NormFloat64() * 0.3),
			float32(rng.NormFloat64() * 0.3),
			float32(rng.NormFloat64() * 0.3),
		}
		codes := inQ.QuantizeSlice(xf)
		x := make([]int32, len(codes))
		for i, cd := range codes {
			x[i] = int32(cd)
		}
		outs, err := g.Eval(x, h, c)
		if err != nil {
			t.Fatal(err)
		}
		logits, hNew, cNew := outs[0], outs[1], outs[2]
		if len(logits) != 5 || len(hNew) != 32 || len(cNew) != 32 {
			t.Fatalf("output widths %d/%d/%d", len(logits), len(hNew), len(cNew))
		}
		for _, v := range hNew {
			if v > 127 || v < -128 {
				t.Fatalf("h code %d out of int8 range", v)
			}
		}
		// Compare argmax action against the float model.
		var probs tensor.Vec
		probs, stF = l.Step(xf, stF)
		gotBest := 0
		for i, v := range logits {
			if v > logits[gotBest] {
				gotBest = i
			}
		}
		if gotBest == tensor.ArgMax(probs) {
			agreeTop++
		}
		h, c = hNew, cNew
	}
	// Quantised recurrence drifts, but the chosen action should usually
	// match the float model.
	if agreeTop < steps*6/10 {
		t.Errorf("quantised LSTM action agrees on %d/%d steps", agreeTop, steps)
	}
}

func evalMicro(t *testing.T, g *mr.Graph, codes []int32) []int32 {
	t.Helper()
	outs, err := g.Eval(codes)
	if err != nil {
		t.Fatalf("%s: %v", g.Name, err)
	}
	return outs[0]
}

func TestMicroInnerProduct(t *testing.T) {
	g, err := InnerProduct(16)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int32, 16)
	var want int64
	for i := range in {
		in[i] = int32(i - 8)
		want += int64(in[i]) * int64((i*7)%15-7)
	}
	out := evalMicro(t, g, in)
	if int64(out[0]) != want {
		t.Errorf("inner product = %d, want %d", out[0], want)
	}
}

func TestMicroConv1D(t *testing.T) {
	g, err := Conv1D(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int32, 9)
	for i := range in {
		in[i] = int32(i + 1)
	}
	out := evalMicro(t, g, in)
	if len(out) != 8 {
		t.Fatalf("conv output width %d", len(out))
	}
	// kernel = [1, 4]: out[o] = 1*in[o] + 4*in[o+1].
	for o := 0; o < 8; o++ {
		want := in[o] + 4*in[o+1]
		if out[o] != want {
			t.Errorf("conv[%d] = %d, want %d", o, out[o], want)
		}
	}
}

func TestMicroReLUs(t *testing.T) {
	g, _ := ReLUBench(4)
	out := evalMicro(t, g, []int32{-5, 0, 3, -1})
	want := []int32{0, 0, 3, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("relu[%d] = %d", i, out[i])
		}
	}
	g, _ = LeakyReLUBench(2)
	out = evalMicro(t, g, []int32{-1000, 1000})
	if out[1] != 1000 {
		t.Errorf("leaky positive = %d", out[1])
	}
	if out[0] >= 0 || out[0] < -11 {
		t.Errorf("leaky negative = %d, want ~-10", out[0])
	}
}

// nonlinear accuracy: drive the quantised graphs across their input range
// and compare against the exact function.
func TestMicroNonlinearAccuracy(t *testing.T) {
	cases := []struct {
		name  string
		build func(int) (*mr.Graph, error)
		fn    func(float64) float64
		lo    float64
		hi    float64
		tol   float64
	}{
		{"tanhexp", TanhExpBench, math.Tanh, -1, 1, 0.12},
		{"sigmoidexp", SigmoidExpBench, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, -1.5, 1.5, 0.1},
		{"tanhpw", TanhPWBench, math.Tanh, -2, 2, 0.12},
		{"sigmoidpw", SigmoidPWBench, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, -2, 2, 0.12},
		{"actlut", ActLUTBench, math.Tanh, -4, 4, 0.05},
	}
	for _, c := range cases {
		g, err := c.build(1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for x := c.lo; x <= c.hi; x += 0.125 {
			codeIn := int32(math.RoundToEven(x / MicroInScale))
			out := evalMicro(t, g, []int32{codeIn})
			got := float64(out[0]) * MicroOutScale
			want := c.fn(float64(codeIn) * MicroInScale)
			if math.Abs(got-want) > c.tol {
				t.Errorf("%s(%v) = %v, want %v", c.name, x, got, want)
			}
		}
	}
}

func TestMicrobenchmarksSuite(t *testing.T) {
	suite, err := Microbenchmarks(16)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"InnerProduct", "ReLU", "LeakyReLU", "TanhExp",
		"SigmoidExp", "TanhPW", "SigmoidPW", "ActLUT", "Conv1D"}
	for _, n := range wantNames {
		g, ok := suite[n]
		if !ok {
			t.Errorf("missing microbenchmark %s", n)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", n, err)
		}
	}
}

func TestConv1DBadDims(t *testing.T) {
	if _, err := Conv1D(0, 2); err == nil {
		t.Error("expected error")
	}
}
