package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"taurus/internal/compiler"
	"taurus/internal/dataset"
	"taurus/internal/lower"
	"taurus/internal/ml"
	"taurus/internal/pisa"
	"taurus/internal/sched"
	"taurus/internal/sched/tapecheck"
	"taurus/internal/tensor"
)

// buildAnomalyDevice trains the 6-12-6-3-1 DNN, lowers it and installs it.
func buildAnomalyDevice(t *testing.T) (*Device, *ml.QuantizedDNN, *dataset.AnomalyGenerator) {
	t.Helper()
	rng := rand.New(rand.NewSource(200))
	gen, err := dataset.NewAnomalyGenerator(dataset.DefaultAnomalyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	X, y := dataset.Split(gen.Records(800))
	n := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	ml.NewTrainer(n, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 20}, rng).Fit(X, y)
	q, err := ml.Quantize(n, X[:200])
	if err != nil {
		t.Fatal(err)
	}
	g, err := lower.DNN(q, "anomaly")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadModel(g, q.InputQ, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	return dev, q, gen
}

func TestDeviceConfigValidation(t *testing.T) {
	if _, err := NewDevice(Config{NumFeatures: 0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero features: %v, want ErrBadConfig", err)
	}
}

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{
		Forward:     "forward",
		Flag:        "flag",
		Drop:        "drop",
		Verdict(3):  "invalid(3)",
		Verdict(-1): "invalid(-1)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestSentinelErrors(t *testing.T) {
	dev, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	g, err := lower.InnerProduct(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.UpdateWeights(g); !errors.Is(err, ErrNoModel) {
		t.Errorf("UpdateWeights before LoadModel: %v, want ErrNoModel", err)
	}
	wide, err := lower.InnerProduct(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadModel(wide, dev.inQ, compiler.Options{}); !errors.Is(err, ErrBadFeatureWidth) {
		t.Errorf("wide model: %v, want ErrBadFeatureWidth", err)
	}
	if err := dev.AccumulateFeatures(0, make([]float32, 3)); !errors.Is(err, ErrBadFeatureWidth) {
		t.Errorf("short features: %v, want ErrBadFeatureWidth", err)
	}
}

func TestUpdateWeightsStructureSentinel(t *testing.T) {
	dev, _, _ := buildAnomalyDevice(t)
	rng := rand.New(rand.NewSource(5))
	small := ml.NewDNN([]int{6, 4, 1}, ml.ReLU, ml.Sigmoid, rng)
	qs, err := ml.Quantize(small, []tensor.Vec{{1, 2, 3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := lower.DNN(qs, "small")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.UpdateWeights(gs); !errors.Is(err, ErrStructureMismatch) {
		t.Errorf("structural change: %v, want ErrStructureMismatch", err)
	}
}

func TestProcessBatchMatchesProcess(t *testing.T) {
	devA, q, gen := buildAnomalyDevice(t)
	devB, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	g, err := lower.DNN(q, "anomaly-copy")
	if err != nil {
		t.Fatal(err)
	}
	if err := devB.LoadModel(g, q.InputQ, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	ins := make([]PacketIn, 100)
	for i := range ins {
		rec := gen.Record()
		ins[i] = PacketIn{
			Data:     pisa.BuildTCPPacket(uint32(i), 2, uint16(3+i), 4, 0x10, 64),
			Features: rec.Features,
		}
	}
	out := make([]Decision, len(ins))
	if err := devB.ProcessBatch(ins, out); err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		want, err := devA.Process(ins[i])
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("packet %d: batch %+v != single %+v", i, out[i], want)
		}
	}
}

func TestProcessBatchDropsMalformed(t *testing.T) {
	dev, _, gen := buildAnomalyDevice(t)
	rec := gen.Record()
	ins := []PacketIn{
		{Data: pisa.BuildTCPPacket(1, 2, 3, 4, 0x10, 64), Features: rec.Features},
		{Data: []byte{0xde, 0xad}},
		{Data: pisa.BuildTCPPacket(1, 2, 3, 4, 0x10, 64)},
	}
	out := make([]Decision, len(ins))
	if err := dev.ProcessBatch(ins, out); err != nil {
		t.Fatal(err)
	}
	if out[1].Verdict != Drop {
		t.Errorf("malformed packet verdict = %v, want drop", out[1].Verdict)
	}
	if dev.Stats().ParseErrors != 1 {
		t.Errorf("ParseErrors = %d, want 1", dev.Stats().ParseErrors)
	}
	if err := dev.ProcessBatch(ins, out[:1]); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short out slice: %v, want ErrBadConfig", err)
	}
	// A wrong-width feature vector is a caller bug, not traffic: abort.
	bad := []PacketIn{{Data: pisa.BuildTCPPacket(1, 2, 3, 4, 0x10, 64), Features: make([]float32, 3)}}
	if err := dev.ProcessBatch(bad, out[:1]); !errors.Is(err, ErrBadFeatureWidth) {
		t.Errorf("bad feature width: %v, want ErrBadFeatureWidth", err)
	}
}

func TestProcessBatchZeroAlloc(t *testing.T) {
	dev, _, gen := buildAnomalyDevice(t)
	ins := make([]PacketIn, 64)
	for i := range ins {
		rec := gen.Record()
		ins[i] = PacketIn{
			Data:     pisa.BuildTCPPacket(uint32(i), 2, 3, 4, 0x10, 64),
			Features: rec.Features,
		}
	}
	out := make([]Decision, len(ins))
	if err := dev.ProcessBatch(ins, out); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := dev.ProcessBatch(ins, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state ProcessBatch allocates %.2f times per batch, want 0", allocs)
	}
}

func TestShardHashMatchesFlowKey(t *testing.T) {
	dev, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	pkt := pisa.BuildTCPPacket(0x0a010203, 0x0a800001, 3456, 443, 0x10, 64)
	want := dev.FlowKey(0x0a010203, 0x0a800001, 3456, 443, 6)
	if got := ShardHash(pkt); got != want {
		t.Errorf("ShardHash = %#x, FlowKey = %#x", got, want)
	}
	if got := ShardHash([]byte{1, 2, 3}); got != 0 {
		t.Errorf("short packet hash = %#x, want 0", got)
	}
	arp := make([]byte, 40)
	arp[12], arp[13] = 0x08, 0x06
	if got := ShardHash(arp); got != 0 {
		t.Errorf("non-IP hash = %#x, want 0", got)
	}
}

func TestModelBusyAccounting(t *testing.T) {
	dev, _, gen := buildAnomalyDevice(t)
	rec := gen.Record()
	pkt := pisa.BuildTCPPacket(1, 2, 3, 4, 0x10, 64)
	if _, err := dev.Process(PacketIn{Data: pkt, Features: rec.Features}); err != nil {
		t.Fatal(err)
	}
	want := float64(dev.ModelII())
	if got := dev.Stats().ModelBusyNs; got != want {
		t.Errorf("ML packet busy = %v ns, want II = %v", got, want)
	}
	arp := make([]byte, 14)
	arp[12], arp[13] = 0x08, 0x06
	if _, err := dev.Process(PacketIn{Data: arp}); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().ModelBusyNs; got != want+1 {
		t.Errorf("bypass packet busy = %v ns, want %v", got, want+1)
	}
}

func TestDeviceClassifiesLikeReference(t *testing.T) {
	dev, q, gen := buildAnomalyDevice(t)
	agree, total := 0, 0
	var sport uint16 = 1000
	for i := 0; i < 300; i++ {
		rec := gen.Record()
		sport++
		pkt := pisa.BuildTCPPacket(0x0a000001+uint32(i), 0x0a800001, sport, 443, 0x10, 64)
		dec, err := dev.Process(PacketIn{Data: pkt, Features: rec.Features})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Bypassed {
			t.Fatal("TCP packet with features should take the ML path")
		}
		// The device verdict must equal thresholding the reference model.
		codes := q.InputQ.QuantizeSlice(rec.Features)
		want := q.ForwardCodes(codes)[0]
		wantAnom := int32(want) >= 64
		gotAnom := dec.Verdict != Forward
		if wantAnom == gotAnom {
			agree++
		}
		total++
	}
	if agree != total {
		t.Errorf("device verdicts agree with reference on %d/%d", agree, total)
	}
}

func TestDeviceLatencyAccounting(t *testing.T) {
	dev, _, gen := buildAnomalyDevice(t)
	rec := gen.Record()
	pkt := pisa.BuildTCPPacket(1, 2, 3, 4, 0, 64)
	dec, err := dev.Process(PacketIn{Data: pkt, Features: rec.Features})
	if err != nil {
		t.Fatal(err)
	}
	if dec.LatencyNs <= BaseSwitchLatencyNs {
		t.Errorf("ML packet latency %v should exceed base %v", dec.LatencyNs, BaseSwitchLatencyNs)
	}
	if dev.ModelLatencyNs() <= 0 || dev.ModelII() != 1 {
		t.Errorf("model stats: lat=%v II=%d", dev.ModelLatencyNs(), dev.ModelII())
	}
	// Same flow, second packet: features already accumulated.
	dec2, err := dev.Process(PacketIn{Data: pkt})
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Bypassed {
		t.Error("second packet of known flow should take ML path")
	}
}

func TestDeviceBypassNonTCP(t *testing.T) {
	dev, _, _ := buildAnomalyDevice(t)
	// ARP-ish frame: bypass with no added latency and a Forward verdict.
	pkt := make([]byte, 14)
	pkt[12], pkt[13] = 0x08, 0x06
	dec, err := dev.Process(PacketIn{Data: pkt})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Bypassed || dec.Verdict != Forward {
		t.Errorf("non-IP packet: bypassed=%v verdict=%v", dec.Bypassed, dec.Verdict)
	}
	if dec.LatencyNs != BaseSwitchLatencyNs {
		t.Errorf("bypass latency = %v, want base only", dec.LatencyNs)
	}
}

func TestDeviceBypassUnknownFlow(t *testing.T) {
	dev, _, _ := buildAnomalyDevice(t)
	pkt := pisa.BuildTCPPacket(9, 9, 9, 9, 0, 0)
	dec, err := dev.Process(PacketIn{Data: pkt})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Bypassed {
		t.Error("flow with no accumulated features should bypass")
	}
}

func TestDeviceNoModelBypasses(t *testing.T) {
	dev, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	pkt := pisa.BuildTCPPacket(1, 2, 3, 4, 0, 0)
	dec, err := dev.Process(PacketIn{Data: pkt, Features: make([]float32, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Bypassed {
		t.Error("device without a model should bypass")
	}
}

func TestDeviceStats(t *testing.T) {
	dev, _, gen := buildAnomalyDevice(t)
	for i := 0; i < 20; i++ {
		rec := gen.Record()
		pkt := pisa.BuildTCPPacket(uint32(i), 2, 3, 4, 0, 0)
		if _, err := dev.Process(PacketIn{Data: pkt, Features: rec.Features}); err != nil {
			t.Fatal(err)
		}
	}
	s := dev.Stats()
	if s.Processed != 20 || s.MLInferences != 20 {
		t.Errorf("stats = %+v", s)
	}
	if s.Forwarded+s.Flagged+s.Dropped != 20 {
		t.Errorf("verdict counts don't add up: %+v", s)
	}
}

// TestTapeFallbackOnVerifierRejection swaps sched's compile gate for one that
// rejects every tape and checks the device degrades exactly as documented: the
// install succeeds on the interpreter, the fallback is counted and explained,
// and restoring the real validator restores the compiled hot path.
func TestTapeFallbackOnVerifierRejection(t *testing.T) {
	sched.SetVerifier(func(p *sched.Program) error { return errors.New("synthetic tape rejection") })
	defer sched.SetVerifier(tapecheck.Check)

	dev, q, gen := buildAnomalyDevice(t)
	if dev.TapeVerified() {
		t.Fatal("TapeVerified() = true with a rejecting verifier installed")
	}
	if r := dev.TapeFallbackReason(); !strings.Contains(r, "synthetic tape rejection") {
		t.Errorf("TapeFallbackReason() = %q, want the verifier's error", r)
	}
	if got := dev.Stats().TapeFallbacks; got != 1 {
		t.Errorf("Stats().TapeFallbacks = %d, want 1", got)
	}
	if dev.CompiledProgram() != nil || dev.ScheduledII() != 0 {
		t.Error("rejected tape still serving the hot path")
	}
	// The interpreter fallback still classifies.
	rec := gen.Record()
	if _, err := dev.Process(PacketIn{Data: pisa.BuildTCPPacket(1, 2, 3, 4, 0, 0), Features: rec.Features}); err != nil {
		t.Fatal(err)
	}

	sched.SetVerifier(tapecheck.Check)
	if err := dev.InstallModel(dev.Model(), q.InputQ); err != nil {
		t.Fatal(err)
	}
	if !dev.TapeVerified() || dev.TapeFallbackReason() != "" {
		t.Errorf("after reinstall with the real validator: TapeVerified() = %v, reason %q",
			dev.TapeVerified(), dev.TapeFallbackReason())
	}
	if got := dev.Stats().TapeFallbacks; got != 1 {
		t.Errorf("Stats().TapeFallbacks = %d after clean reinstall, want 1", got)
	}
}

func TestDeviceParseError(t *testing.T) {
	dev, _, _ := buildAnomalyDevice(t)
	if _, err := dev.Process(PacketIn{Data: []byte{1, 2}}); err == nil {
		t.Error("truncated packet should error")
	}
	if dev.Stats().ParseErrors != 1 {
		t.Error("parse error not counted")
	}
}

func TestLoadModelValidation(t *testing.T) {
	dev, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong input width.
	g, err := lower.InnerProduct(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadModel(g, dev.inQ, compiler.Options{}); err == nil {
		t.Error("width-16 model on 6-feature device should fail")
	}
}

func TestUpdateWeights(t *testing.T) {
	dev, q, gen := buildAnomalyDevice(t)

	// Retrain a structurally identical model with different weights.
	rng := rand.New(rand.NewSource(201))
	X, y := dataset.Split(gen.Records(400))
	n2 := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	ml.NewTrainer(n2, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 10}, rng).Fit(X, y)
	q2, err := ml.Quantize(n2, X[:100])
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lower.DNN(q2, "anomaly-v2")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.UpdateWeights(g2); err != nil {
		t.Fatal(err)
	}
	// After the update the device computes with the new weights. (Input
	// quantisers calibrate to the same feature range, so codes agree.)
	rec := gen.Record()
	pkt := pisa.BuildTCPPacket(77, 2, 3, 4, 0, 0)
	dec, err := dev.Process(PacketIn{Data: pkt, Features: rec.Features})
	if err != nil {
		t.Fatal(err)
	}
	codes := q.InputQ.QuantizeSlice(rec.Features)
	want := q2.ForwardCodes(codes)[0]
	if dec.MLScore != int32(want) {
		t.Errorf("score after update = %d, want %d", dec.MLScore, want)
	}

	// Structural change must be rejected.
	small := ml.NewDNN([]int{6, 4, 1}, ml.ReLU, ml.Sigmoid, rng)
	qs, err := ml.Quantize(small, X[:50])
	if err != nil {
		t.Fatal(err)
	}
	gs, err := lower.DNN(qs, "small")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.UpdateWeights(gs); err == nil {
		t.Error("structural change should be rejected")
	}
}

// TestUpdateWeightsIsolatesTrainerGraph pins the §3.3.1 push contract: the
// pushed graph is only read, so a trainer that keeps mutating its own graph
// after UpdateWeights returns must not change what the device computes.
func TestUpdateWeightsIsolatesTrainerGraph(t *testing.T) {
	dev, _, gen := buildAnomalyDevice(t)

	rng := rand.New(rand.NewSource(77))
	X, y := dataset.Split(gen.Records(400))
	n2 := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	ml.NewTrainer(n2, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 5}, rng).Fit(X, y)
	q2, err := ml.Quantize(n2, X[:100])
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lower.DNN(q2, "trainer")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.UpdateWeights(g2); err != nil {
		t.Fatal(err)
	}

	recs := gen.Records(32)
	pkt := pisa.BuildTCPPacket(77, 2, 3, 4, 0, 0)
	score := func(r dataset.Record) int32 {
		t.Helper()
		dec, err := dev.Process(PacketIn{Data: pkt, Features: r.Features})
		if err != nil {
			t.Fatal(err)
		}
		return dec.MLScore
	}
	want := make([]int32, len(recs))
	for i, r := range recs {
		want[i] = score(r)
	}

	// The trainer keeps going: clobber every weight payload of its graph.
	for _, n := range g2.Nodes {
		for i := range n.Const {
			n.Const[i] = 99
		}
		if n.LUT != nil {
			for i := range n.LUT.Table {
				n.LUT.Table[i] = -128
			}
			n.LUT.Mult.M0, n.LUT.Mult.Shift = 1<<30, 1
		}
		n.Mult.M0, n.Mult.Shift = 1<<30, 1
	}

	for i, r := range recs {
		if got := score(r); got != want[i] {
			t.Fatalf("record %d: score changed from %d to %d after trainer mutated its graph", i, want[i], got)
		}
	}
}

func TestUpdateWeightsNoModel(t *testing.T) {
	dev, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := lower.InnerProduct(6)
	if err := dev.UpdateWeights(g); err == nil {
		t.Error("update without a model should fail")
	}
}

func TestFlowKeyStability(t *testing.T) {
	dev, err := NewDevice(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	a := dev.FlowKey(1, 2, 3, 4, 6)
	b := dev.FlowKey(1, 2, 3, 4, 6)
	c := dev.FlowKey(1, 2, 3, 5, 6)
	if a != b {
		t.Error("same tuple should hash identically")
	}
	if a == c {
		t.Error("different tuples should (almost surely) differ")
	}
}
