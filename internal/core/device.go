// Package core integrates the Taurus device (§3, §4, Figure 6): a PISA
// pipeline — parser, preprocessing MATs with stateful feature registers —
// feeding the MapReduce block for per-packet inference, with a bypass path
// for non-ML traffic, a round-robin merge, postprocessing MATs that turn
// the model output into a forwarding verdict, and out-of-band weight
// updates from the control plane (Figure 1).
//
// The per-packet path (ProcessInto, ProcessBatch) is allocation-free in the
// steady state: the PHV, the feature-code scratch and every MapReduce
// intermediate are preallocated when the model is loaded, mirroring hardware
// where all buffers exist before the first packet arrives.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"taurus/internal/cgra"
	"taurus/internal/compiler"
	"taurus/internal/fixed"
	mr "taurus/internal/mapreduce"
	"taurus/internal/obs"
	"taurus/internal/pisa"
	"taurus/internal/sched"

	// tapecheck both arms sched.Compile's translation-validation gate —
	// every tape a Device installs has been statically verified against its
	// source graph, and a rejected tape is a counted interpreter fallback —
	// and backs RecheckTape's post-push revalidation of the serving tape.
	"taurus/internal/sched/tapecheck"
)

// Verdict is the postprocessing decision for a packet (§3.2: drop, flag, or
// forward).
type Verdict int

const (
	// Forward lets the packet through unchanged.
	Forward Verdict = iota
	// Flag forwards but marks the packet for monitoring.
	Flag
	// Drop discards the packet.
	Drop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Forward:
		return "forward"
	case Flag:
		return "flag"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("invalid(%d)", int(v))
	}
}

// Decision is the per-packet outcome.
type Decision struct {
	Verdict  Verdict
	Bypassed bool
	// MLScore is the raw model output code (meaningless when Bypassed).
	MLScore int32
	// LatencyNs is the modelled switch transit time for this packet.
	LatencyNs float64
}

// Stats counts device activity.
type Stats struct {
	Processed, MLInferences, Bypassed int
	Forwarded, Flagged, Dropped       int
	ParseErrors                       int
	// TapeFallbacks counts model installs that fell back to the interpreter
	// because the compiled tape was refused — by the list scheduler or by
	// tapecheck's translation validator (see Device.TapeFallbackReason).
	TapeFallbacks int
	// ModelBusyNs is the modelled occupancy of this device's MapReduce
	// block: each ML packet holds an issue slot for II cycles (1 ns each at
	// the 1 GHz fabric), each bypass packet for one PISA cycle. The busiest
	// shard's occupancy bounds a pipeline's modelled throughput.
	ModelBusyNs float64
}

// Add accumulates other into s (for merging per-shard stats).
func (s *Stats) Add(other Stats) {
	s.Processed += other.Processed
	s.MLInferences += other.MLInferences
	s.Bypassed += other.Bypassed
	s.Forwarded += other.Forwarded
	s.Flagged += other.Flagged
	s.Dropped += other.Dropped
	s.ParseErrors += other.ParseErrors
	s.TapeFallbacks += other.TapeFallbacks
	s.ModelBusyNs += other.ModelBusyNs
}

// BaseSwitchLatencyNs is the transit latency of the conventional pipeline
// (§5.1.2 assumes a 1 µs datacenter switch).
const BaseSwitchLatencyNs = 1000.0

// bypassCycleNs is the MapReduce-block occupancy of a bypass packet: one
// PISA cycle through the arbiter, no compute (§4).
const bypassCycleNs = 1.0

// Config parameterises a device.
type Config struct {
	// Grid is the MapReduce block configuration (DefaultGrid if zero).
	Grid cgra.GridSpec
	// FlowTableSize is the number of per-flow register slots for feature
	// accumulation (power of two recommended).
	FlowTableSize int
	// NumFeatures is the model's input width.
	NumFeatures int
	// Threshold is the post-processing cut on the model's output code:
	// score >= Threshold is treated as anomalous (Drop), below as benign.
	Threshold int32
	// DropOnAnomaly selects Drop (true) or Flag (false) for anomalous
	// packets.
	DropOnAnomaly bool
	// Obs is the metrics registry the device's instruments register in
	// (obs.Default() when nil). Stats() is a view over these instruments.
	Obs *obs.Registry
	// ObsLabels identify this device's instruments in the registry — the
	// pipeline tags its shards {pipe, shard}. When nil the device takes a
	// process-unique {dev=N} label; two devices sharing a registry AND an
	// explicit label set share instruments, so their Stats() merge.
	ObsLabels []obs.Label
	// Tracer receives the device's control-plane events — today the
	// tape-fallback verdict on model install (obs.DefaultTracer() when nil).
	Tracer *obs.Tracer
}

// DefaultConfig returns the anomaly-detection configuration of §5.2.2.
func DefaultConfig(numFeatures int) Config {
	return Config{FlowTableSize: 4096, NumFeatures: numFeatures, Threshold: 64, DropOnAnomaly: false}
}

// Device is a Taurus switch. A Device is not safe for concurrent use; the
// pipeline package shards traffic across several devices for that.
type Device struct {
	cfg    Config
	layout *pisa.Layout
	parser *pisa.Parser
	preMAT *pisa.Table
	post   *pisa.Table

	// featureRegs[i] holds feature i for every tracked flow (§3.1 stateful
	// registers; values are int8 codes from the preprocessing MATs).
	featureRegs []*pisa.RegisterArray
	// flowValid marks slots whose features have been accumulated.
	flowValid *pisa.RegisterArray

	model *compiler.Result
	eval  *mr.Evaluator
	// prog is the compiled evaluation tape for the installed model. The hot
	// path prefers it over the interpreter; it stays nil when list scheduling
	// fails, and eval serves every inference (the fallback contract).
	prog *sched.Program
	// schedII is prog's measured initiation interval (0 on fallback).
	schedII int
	// tapeErr records why the last install fell back to the interpreter
	// ("" when the compiled tape is serving).
	tapeErr   string
	mlIdx     []int // ML staging slots for ProcessIndexed, cap = prog batch
	inQ       fixed.Quantizer
	modelLat  float64
	modelII   int
	phv       *pisa.PHV
	featureID []pisa.FieldID
	bypassID  pisa.FieldID
	scoreID   pisa.FieldID
	verdictID pisa.FieldID
	srcID     pisa.FieldID
	dstID     pisa.FieldID
	sportID   pisa.FieldID
	dportID   pisa.FieldID
	protoID   pisa.FieldID

	// m holds the registry-backed instruments Stats() reads; tally is the
	// single-writer per-call scratch the packet path increments, folded into
	// m once per Process* call so the hot path pays a handful of atomic ops
	// per batch instead of several per packet.
	m      devMetrics
	tally  devTally
	tracer *obs.Tracer
}

// devMetrics are the device's registry instruments, all sharing one label
// set. The dotted names live under taurus.device.*.
type devMetrics struct {
	processed     *obs.Counter
	mlInferences  *obs.Counter
	bypassed      *obs.Counter
	forwarded     *obs.Counter
	flagged       *obs.Counter
	dropped       *obs.Counter
	parseErrors   *obs.Counter
	tapeFallbacks *obs.Counter
	// modelBusyNs accumulates the MapReduce block's modelled occupancy in
	// integral nanoseconds (II per ML packet, one cycle per bypass).
	modelBusyNs *obs.Counter
	// serviceNs is the per-packet service-time distribution: every ML
	// inference records its II, every bypass its single cycle, so
	// serviceNs.Count == ml+bypass and serviceNs.Sum == modelBusyNs.
	serviceNs *obs.Histogram
}

// devTally mirrors the counters as plain ints for the packet path.
type devTally struct {
	processed, mlInferences, bypassed int
	forwarded, flagged, dropped       int
	parseErrors                       int
}

// devOrdinal numbers devices built without explicit ObsLabels.
var devOrdinal atomic.Int64

func bindDevMetrics(reg *obs.Registry, labels []obs.Label) devMetrics {
	return devMetrics{
		processed:     reg.Counter("taurus.device.processed", labels...),
		mlInferences:  reg.Counter("taurus.device.ml_inferences", labels...),
		bypassed:      reg.Counter("taurus.device.bypassed", labels...),
		forwarded:     reg.Counter("taurus.device.forwarded", labels...),
		flagged:       reg.Counter("taurus.device.flagged", labels...),
		dropped:       reg.Counter("taurus.device.dropped", labels...),
		parseErrors:   reg.Counter("taurus.device.parse_errors", labels...),
		tapeFallbacks: reg.Counter("taurus.device.tape_fallbacks", labels...),
		modelBusyNs:   reg.Counter("taurus.device.model_busy_ns", labels...),
		serviceNs:     reg.Histogram("taurus.device.service_ns", labels...),
	}
}

// flushTally folds the per-call tally into the registry instruments. Runs
// once per Process* call, so its cost amortises over the whole batch.
//
// hotpath: zero-alloc
func (d *Device) flushTally() {
	t := &d.tally
	if t.processed != 0 {
		d.m.processed.Add(int64(t.processed))
	}
	if t.mlInferences != 0 {
		d.m.mlInferences.Add(int64(t.mlInferences))
		d.m.serviceNs.RecordN(float64(d.serviceII()), int64(t.mlInferences))
	}
	if t.bypassed != 0 {
		d.m.bypassed.Add(int64(t.bypassed))
		d.m.serviceNs.RecordN(bypassCycleNs, int64(t.bypassed))
	}
	if busy := int64(t.mlInferences)*int64(d.serviceII()) + int64(t.bypassed); busy != 0 {
		d.m.modelBusyNs.Add(busy)
	}
	if t.forwarded != 0 {
		d.m.forwarded.Add(int64(t.forwarded))
	}
	if t.flagged != 0 {
		d.m.flagged.Add(int64(t.flagged))
	}
	if t.dropped != 0 {
		d.m.dropped.Add(int64(t.dropped))
	}
	if t.parseErrors != 0 {
		d.m.parseErrors.Add(int64(t.parseErrors))
	}
	*t = devTally{}
}

// NewDevice builds a device; a model must be loaded before ML packets can be
// classified (packets bypass until then).
func NewDevice(cfg Config) (*Device, error) {
	if cfg.NumFeatures <= 0 {
		return nil, fmt.Errorf("%w: NumFeatures must be positive, got %d", ErrBadConfig, cfg.NumFeatures)
	}
	if cfg.FlowTableSize <= 0 {
		cfg.FlowTableSize = 4096
	}
	if cfg.Grid == (cgra.GridSpec{}) {
		cfg.Grid = cgra.DefaultGrid()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	labels := cfg.ObsLabels
	if labels == nil {
		labels = []obs.Label{obs.L("dev", strconv.FormatInt(devOrdinal.Add(1)-1, 10))}
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}

	names := pisa.StandardLayoutFields()
	names = append(names, "meta.bypass", "meta.score", "meta.verdict")
	for i := 0; i < cfg.NumFeatures; i++ {
		names = append(names, fmt.Sprintf("meta.f%d", i))
	}
	layout := pisa.NewLayout(names...)
	parser, err := pisa.StandardParser(layout)
	if err != nil {
		return nil, err
	}

	d := &Device{
		cfg:       cfg,
		layout:    layout,
		parser:    parser,
		phv:       pisa.NewPHV(layout),
		flowValid: pisa.NewRegisterArray("flow_valid", cfg.FlowTableSize),
		bypassID:  layout.ID("meta.bypass"),
		scoreID:   layout.ID("meta.score"),
		verdictID: layout.ID("meta.verdict"),
		srcID:     layout.ID("ipv4.src"),
		dstID:     layout.ID("ipv4.dst"),
		sportID:   layout.ID("l4.sport"),
		dportID:   layout.ID("l4.dport"),
		protoID:   layout.ID("ipv4.proto"),
		m:         bindDevMetrics(reg, labels),
		tracer:    tracer,
	}
	for i := 0; i < cfg.NumFeatures; i++ {
		d.featureID = append(d.featureID, layout.ID(fmt.Sprintf("meta.f%d", i)))
		d.featureRegs = append(d.featureRegs,
			pisa.NewRegisterArray(fmt.Sprintf("feat%d", i), cfg.FlowTableSize))
	}

	// Preprocessing MAT: non-IPv4/TCP traffic bypasses the MapReduce block
	// (Figure 6). Default action marks bypass; a TCP rule clears it.
	d.preMAT = pisa.NewTable("pre_bypass", []pisa.Key{
		{Field: layout.ID("eth.type"), Kind: pisa.Exact},
		{Field: layout.ID("ipv4.proto"), Kind: pisa.Exact},
	}, 16)
	d.preMAT.Default = &pisa.VLIWAction{Name: "set_bypass", Ops: []pisa.ActionOp{
		{Op: pisa.OpSet, Dst: d.bypassID, Imm: 1, UseImm: true},
	}}
	if err := d.preMAT.Insert(&pisa.Entry{
		Values: []int32{0x0800, 6},
		Action: &pisa.VLIWAction{Name: "ml_path", Ops: []pisa.ActionOp{
			{Op: pisa.OpSet, Dst: d.bypassID, Imm: 0, UseImm: true},
		}},
	}); err != nil {
		return nil, err
	}

	// Postprocessing MAT (§3.2): subtract the threshold from the score,
	// then a ternary match on the sign bit separates benign from anomalous.
	d.post = pisa.NewTable("post_verdict", []pisa.Key{
		{Field: layout.ID("meta.score"), Kind: pisa.Ternary},
	}, 4)
	anomalyVerdict := int32(Flag)
	if cfg.DropOnAnomaly {
		anomalyVerdict = int32(Drop)
	}
	// Negative (sign bit set) -> benign/forward.
	if err := d.post.Insert(&pisa.Entry{
		Values: []int32{-0x80000000}, Masks: []int32{-0x80000000}, Priority: 10,
		Action: &pisa.VLIWAction{Name: "benign", Ops: []pisa.ActionOp{
			{Op: pisa.OpSet, Dst: d.verdictID, Imm: int32(Forward), UseImm: true},
		}},
	}); err != nil {
		return nil, err
	}
	// Non-negative -> anomalous.
	if err := d.post.Insert(&pisa.Entry{
		Values: []int32{0}, Masks: []int32{0}, Priority: 1,
		Action: &pisa.VLIWAction{Name: "anomalous", Ops: []pisa.ActionOp{
			{Op: pisa.OpSet, Dst: d.verdictID, Imm: anomalyVerdict, UseImm: true},
		}},
	}); err != nil {
		return nil, err
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// checkModel validates a program's shape against the device.
func (d *Device) checkModel(g *mr.Graph) error {
	if len(g.Inputs) != 1 || g.Node(g.Inputs[0]).Width != d.cfg.NumFeatures {
		return fmt.Errorf("%w: model wants %d inputs of width %d, device has %d features",
			ErrBadFeatureWidth, len(g.Inputs), inputWidth(g), d.cfg.NumFeatures)
	}
	if len(g.Outputs) != 1 || g.Node(g.Outputs[0]).Width != 1 {
		return fmt.Errorf("%w: model must produce one single-lane output", ErrStructureMismatch)
	}
	return nil
}

// LoadModel compiles a MapReduce program onto the device's grid and
// installs it, together with the feature quantiser the preprocessing MATs
// use. The graph must take a single input of width NumFeatures and produce
// a single-lane score output.
func (d *Device) LoadModel(g *mr.Graph, inQ fixed.Quantizer, opts compiler.Options) error {
	if err := d.checkModel(g); err != nil {
		return err
	}
	if opts.Grid == (cgra.GridSpec{}) {
		opts.Grid = d.cfg.Grid
	}
	res, err := compiler.Compile(g, opts)
	if err != nil {
		return err
	}
	return d.InstallModel(res, inQ)
}

// InstallModel installs an already-compiled model, taking ownership of
// res.Graph (weight updates mutate it in place). Callers replicating one
// compiled design across many devices — the pipeline's shards — compile
// once and install per device with a shard-local graph clone, instead of
// paying for placement per shard.
func (d *Device) InstallModel(res *compiler.Result, inQ fixed.Quantizer) error {
	if err := d.checkModel(res.Graph); err != nil {
		return err
	}
	eval, err := mr.NewEvaluator(res.Graph)
	if err != nil {
		return err
	}
	// Compile the hot path: list-schedule the graph on the placed grid and
	// emit the fused tape, which sched.Compile hands through tapecheck's
	// translation validator before returning it. A graph the scheduler
	// refuses (e.g. a LUT model on a grid with no MUs) — or a tape the
	// validator rejects as an unfaithful translation — falls back to the
	// interpreter; the device still serves it, just without the compiled
	// fast path or measured II, and the fallback is counted in Stats.
	grid := d.cfg.Grid
	if res.Placement != nil && res.Placement.Spec != (cgra.GridSpec{}) {
		grid = res.Placement.Spec
	}
	d.model = res
	d.eval = eval
	d.prog = nil
	d.schedII = 0
	d.mlIdx = nil
	d.tapeErr = ""
	if prog, perr := sched.Compile(res.Graph, grid); perr == nil {
		d.prog = prog
		d.schedII = prog.Schedule().II
		d.mlIdx = make([]int, 0, prog.MaxBatch())
	} else {
		d.tapeErr = perr.Error()
		d.m.tapeFallbacks.Inc()
		d.tracer.Emitf(0, "tape.fallback", "reason=%q", perr.Error())
	}
	d.inQ = inQ
	d.modelLat = res.Stats.LatencyNs()
	d.modelII = res.Stats.II
	return nil
}

func inputWidth(g *mr.Graph) int {
	if len(g.Inputs) == 0 {
		return 0
	}
	return g.Node(g.Inputs[0]).Width
}

// Model returns the installed compiled model (nil before LoadModel).
func (d *Device) Model() *compiler.Result { return d.model }

// InputQuantizer returns the feature quantiser installed with the model (the
// zero Quantizer before LoadModel). The control plane needs it to requantise
// retrained weights into the same input domain the preprocessing MATs use.
func (d *Device) InputQuantizer() fixed.Quantizer { return d.inQ }

// ClearModel removes the installed model; packets bypass the MapReduce block
// again until the next install. Used to roll a device back to its pre-model
// state when a multi-device install fails partway.
func (d *Device) ClearModel() {
	d.model = nil
	d.eval = nil
	d.prog = nil
	d.schedII = 0
	d.tapeErr = ""
	d.mlIdx = nil
	d.inQ = fixed.Quantizer{}
	d.modelLat = 0
	d.modelII = 0
}

// UpdateWeights swaps the constants and LUT tables of the installed model
// for those of newGraph without re-placing the design — the out-of-band
// weight update of §3.3.1/Figure 1. The new graph must be structurally
// identical (same node kinds, widths and wiring); it is only read, so one
// graph can be pushed to many devices concurrently.
func (d *Device) UpdateWeights(newGraph *mr.Graph) error {
	if d.model == nil {
		return ErrNoModel
	}
	old := d.model.Graph
	if len(old.Nodes) != len(newGraph.Nodes) {
		return fmt.Errorf("%w: node count %d vs %d", ErrStructureMismatch, len(newGraph.Nodes), len(old.Nodes))
	}
	for i, n := range newGraph.Nodes {
		o := old.Nodes[i]
		if n.Kind != o.Kind || n.Width != o.Width || len(n.Args) != len(o.Args) {
			return fmt.Errorf("%w: node %d differs", ErrStructureMismatch, i)
		}
		for j := range n.Args {
			if n.Args[j] != o.Args[j] {
				return fmt.Errorf("%w: node %d rewired", ErrStructureMismatch, i)
			}
		}
	}
	for i, n := range newGraph.Nodes {
		o := old.Nodes[i]
		switch n.Kind {
		case mr.KConst:
			copy(o.Const, n.Const)
		case mr.KLUT:
			// Explicit content copy into the shard-owned LUT object. Table
			// is a value array today, so plain assignment would copy too;
			// the copy form keeps the "newGraph is only read" contract —
			// a trainer may mutate its graph right after the push — from
			// silently breaking if Table ever becomes a slice.
			o.LUT.Mult = n.LUT.Mult
			copy(o.LUT.Table[:], n.LUT.Table[:])
		case mr.KRequant, mr.KScale:
			o.Mult = n.Mult
		}
	}
	return nil
}

// fnv1aTuple hashes the 13-byte five-tuple encoding with FNV-1a, inline so
// the hot path does not allocate a hash.Hash. FNV's low-order bits avalanche
// poorly on near-sequential tuples, and both register indexing (key % size)
// and shard selection (key % shards) live in the low bits, so a murmur3
// finaliser mixes the result.
func fnv1aTuple(b *[13]byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// FlowKey hashes a five-tuple into the register index space.
func (d *Device) FlowKey(srcIP, dstIP uint32, sport, dport uint16, proto uint8) uint32 {
	var b [13]byte
	b[0] = byte(srcIP >> 24)
	b[1] = byte(srcIP >> 16)
	b[2] = byte(srcIP >> 8)
	b[3] = byte(srcIP)
	b[4] = byte(dstIP >> 24)
	b[5] = byte(dstIP >> 16)
	b[6] = byte(dstIP >> 8)
	b[7] = byte(dstIP)
	b[8] = byte(sport >> 8)
	b[9] = byte(sport)
	b[10] = byte(dport >> 8)
	b[11] = byte(dport)
	b[12] = proto
	return fnv1aTuple(&b)
}

// ShardHash hashes a raw packet's five-tuple without running the full
// parser, so a pipeline can pick the owning shard before any per-shard
// state is touched. For standard Ethernet+IPv4 packets it equals the
// device's FlowKey; anything else (non-IP, truncated) returns 0 and may be
// placed on any shard, since such packets carry no per-flow register state.
func ShardHash(data []byte) uint32 {
	// Ethernet(14) + IPv4 header (fixed 20, matching the standard parser).
	if len(data) < 34 || data[12] != 0x08 || data[13] != 0x00 {
		return 0
	}
	var b [13]byte
	copy(b[0:8], data[26:34]) // src, dst IPs as wired (big-endian)
	proto := data[23]
	if (proto == 6 || proto == 17) && len(data) >= 38 {
		copy(b[8:12], data[34:38]) // sport, dport
	}
	b[12] = proto
	return fnv1aTuple(&b)
}

// AccumulateFeatures installs a flow's feature vector into the stateful
// registers (the role of INT and cross-packet accumulation in §3.1). In the
// testbed the features arrive with the expanded trace (§5.2.2).
func (d *Device) AccumulateFeatures(flowKey uint32, features []float32) error {
	if len(features) != d.cfg.NumFeatures {
		return fmt.Errorf("%w: got %d features, want %d", ErrBadFeatureWidth, len(features), d.cfg.NumFeatures)
	}
	for i, f := range features {
		d.featureRegs[i].Write(flowKey, int32(d.inQ.Quantize(f)))
	}
	d.flowValid.Write(flowKey, 1)
	return nil
}

// PacketIn is one packet presented to the device.
type PacketIn struct {
	// Data is the raw packet.
	Data []byte
	// Features optionally carries INT/telemetry features to accumulate
	// before inference (nil = use whatever the registers hold).
	Features []float32
}

// Process runs one packet through the full pipeline. It is a convenience
// wrapper over ProcessInto; batch traffic should use ProcessBatch (or the
// pipeline package) instead.
func (d *Device) Process(in PacketIn) (Decision, error) {
	var dec Decision
	err := d.ProcessInto(in, &dec)
	return dec, err
}

// ProcessInto runs one packet through the full pipeline, writing the
// outcome into dec. It performs no heap allocation in the steady state.
//
// hotpath: zero-alloc
func (d *Device) ProcessInto(in PacketIn, dec *Decision) error {
	err := d.processInto(in, dec)
	d.flushTally()
	return err
}

// processInto is ProcessInto without the instrument flush — the shared inner
// path, so ProcessIndexed's interpreter loop flushes once per batch rather
// than once per packet.
//
// hotpath: zero-alloc
func (d *Device) processInto(in PacketIn, dec *Decision) error {
	key, ml, err := d.admit(in, dec)
	if err != nil {
		return err
	}
	if !ml {
		d.finishBypass(dec)
		return nil
	}
	// Hand the dense feature vector to the MapReduce block (Figure 7): the
	// compiled tape when the schedule built, the interpreter otherwise. Both
	// read through preallocated input buffers.
	var score int32
	if d.prog != nil {
		d.stageCodes(d.prog.In(0), key)
		d.prog.Run()
		score = d.prog.Out(0)[0]
	} else {
		d.stageCodes(d.eval.Input(0), key)
		d.eval.Eval()
		score = d.eval.Output(0)[0]
	}
	d.finishML(dec, score)
	return nil
}

// admit runs the front half of the pipeline — parse, preprocessing MAT,
// feature accumulation — and reports whether the packet takes the ML path.
func (d *Device) admit(in PacketIn, dec *Decision) (key uint32, ml bool, err error) {
	d.tally.processed++
	phv := d.phv
	phv.Reset()
	if _, err := d.parser.Parse(in.Data, phv); err != nil {
		d.tally.parseErrors++
		*dec = Decision{}
		return 0, false, err
	}

	// Preprocessing MAT: bypass decision.
	d.preMAT.Lookup(phv)
	bypass := phv.Get(d.bypassID) != 0

	key = d.FlowKey(
		uint32(phv.Get(d.srcID)), uint32(phv.Get(d.dstID)),
		uint16(phv.Get(d.sportID)), uint16(phv.Get(d.dportID)),
		uint8(phv.Get(d.protoID)))

	if !bypass {
		if in.Features != nil {
			if err := d.AccumulateFeatures(key, in.Features); err != nil {
				*dec = Decision{}
				return 0, false, err
			}
		}
		if d.model == nil || d.flowValid.Read(key) == 0 {
			bypass = true // nothing to infer from yet
		}
	}
	*dec = Decision{Bypassed: bypass, LatencyNs: BaseSwitchLatencyNs}
	return key, !bypass, nil
}

// stageCodes reads the flow's accumulated feature codes into the PHV and the
// model's input buffer.
func (d *Device) stageCodes(codes []int32, key uint32) {
	for i := range codes {
		c := d.featureRegs[i].Read(key)
		d.phv.Set(d.featureID[i], c)
		codes[i] = c
	}
}

// finishML charges the inference to the service model and runs the verdict
// MAT on the score. The postprocessing MAT keys on meta.score alone, so it
// is safe to run after other packets have cycled through the shared PHV.
func (d *Device) finishML(dec *Decision, score int32) {
	dec.MLScore = score
	d.tally.mlInferences++ // II cycles of occupancy, charged at flush
	// Threshold shift happens in the MAT action domain: score-threshold.
	d.phv.Set(d.scoreID, score-d.cfg.Threshold)
	dec.LatencyNs += d.modelLat
	d.applyVerdict(dec)
}

func (d *Device) finishBypass(dec *Decision) {
	d.tally.bypassed++ // one arbiter cycle of occupancy, charged at flush
	// Bypass packets skip MapReduce entirely: no added latency (§4).
	d.phv.Set(d.scoreID, -1) // negative -> forward
	d.applyVerdict(dec)
}

// applyVerdict runs the postprocessing MAT on meta.score and counts the
// outcome.
func (d *Device) applyVerdict(dec *Decision) {
	d.post.Lookup(d.phv)
	dec.Verdict = Verdict(d.phv.Get(d.verdictID))
	switch dec.Verdict {
	case Forward:
		d.tally.forwarded++
	case Flag:
		d.tally.flagged++
	case Drop:
		d.tally.dropped++
	}
}

// ProcessBatch runs every packet of ins through the pipeline, writing
// out[i] for ins[i]. Malformed packets — parse failures, the data-plane
// reality of line-rate traffic — are dropped (Verdict Drop, counted in
// Stats.ParseErrors) rather than aborting the batch. A feature vector of
// the wrong width is a caller bug: the whole batch is still processed (so
// out is fully written, matching the pipeline's behaviour), then the first
// such error is returned as ErrBadFeatureWidth. The steady-state path
// performs no heap allocation. out must be at least as long as ins.
//
// hotpath: zero-alloc
func (d *Device) ProcessBatch(ins []PacketIn, out []Decision) error {
	if len(out) < len(ins) {
		//hotpathcheck:allow — caller-bug error path, taken at most once per batch, never per packet
		return fmt.Errorf("%w: out has %d slots for %d packets", ErrBadConfig, len(out), len(ins))
	}
	return d.ProcessIndexed(ins, out, nil)
}

// ProcessIndexed processes the packets ins[i] for each i in idx (all of ins
// when idx is nil), writing out[i] — the shape the pipeline's shard workers
// use, where idx is the shard's partition of a shared batch. When the
// compiled program is installed, ML packets are staged into its batch arena
// and swept up to MaxBatch at a time, amortising tape dispatch the way the
// hardware amortises pipeline fill; decisions are bit-identical to the
// per-packet path because inference neither reads nor writes flow registers.
// Error semantics match ProcessBatch.
//
// hotpath: zero-alloc
func (d *Device) ProcessIndexed(ins []PacketIn, out []Decision, idx []int) error {
	n := len(ins)
	if idx != nil {
		n = len(idx)
	}
	var callerErr error
	//hotpathcheck:allow — closure is built once per batch, captures only stack state, and does not escape
	fail := func(i int, err error) {
		if callerErr == nil && errors.Is(err, ErrBadFeatureWidth) {
			callerErr = err
		}
		out[i] = Decision{Verdict: Drop}
	}
	if d.prog == nil {
		for k := 0; k < n; k++ {
			i := k
			if idx != nil {
				i = idx[k]
			}
			if err := d.processInto(ins[i], &out[i]); err != nil {
				fail(i, err)
			}
		}
		d.flushTally()
		return callerErr
	}
	staged := d.mlIdx[:0]
	for k := 0; k < n; k++ {
		i := k
		if idx != nil {
			i = idx[k]
		}
		key, ml, err := d.admit(ins[i], &out[i])
		if err != nil {
			fail(i, err)
			continue
		}
		if !ml {
			d.finishBypass(&out[i])
			continue
		}
		d.stageCodes(d.prog.InAt(0, len(staged)), key)
		//hotpathcheck:allow — append stays within d.mlIdx's preallocated MaxBatch capacity (flushed when full)
		staged = append(staged, i)
		if len(staged) == d.prog.MaxBatch() {
			d.flushML(staged, out)
			staged = staged[:0]
		}
	}
	if len(staged) > 0 {
		d.flushML(staged, out)
	}
	d.mlIdx = staged[:0]
	d.flushTally()
	return callerErr
}

// flushML sweeps the staged ML packets through the compiled tape and
// finalises each one's decision from its batch slot.
//
// hotpath: zero-alloc
func (d *Device) flushML(staged []int, out []Decision) {
	d.prog.RunBatch(len(staged))
	for j, i := range staged {
		d.finishML(&out[i], d.prog.OutAt(0, j)[0])
	}
}

// Stats renders the device counters from their registry instruments: a
// synchronised snapshot, safe to call concurrently with a goroutine driving
// the packet path. Each field is an atomic read; cross-field consistency is
// per Process* call (the tally flushes at call boundaries), so a snapshot
// taken mid-batch lags by at most that batch.
func (d *Device) Stats() Stats {
	return Stats{
		Processed:     int(d.m.processed.Value()),
		MLInferences:  int(d.m.mlInferences.Value()),
		Bypassed:      int(d.m.bypassed.Value()),
		Forwarded:     int(d.m.forwarded.Value()),
		Flagged:       int(d.m.flagged.Value()),
		Dropped:       int(d.m.dropped.Value()),
		ParseErrors:   int(d.m.parseErrors.Value()),
		TapeFallbacks: int(d.m.tapeFallbacks.Value()),
		ModelBusyNs:   float64(d.m.modelBusyNs.Value()),
	}
}

// ServiceHist returns the device's service-time histogram instrument
// (nanoseconds per packet: II for ML packets, one cycle for bypass). The
// same instrument is reachable through the registry as
// taurus.device.service_ns with the device's labels.
func (d *Device) ServiceHist() *obs.Histogram { return d.m.serviceNs }

// RecheckTape re-runs tapecheck's translation validator on the tape the hot
// path is serving, against the graph as it stands now — the control plane's
// post-push audit that a weight update (which mutates the graph the tape
// aliases) left the compiled path faithful. ErrNoModel before LoadModel.
// While the interpreter fallback is serving there is no translation to audit
// (the interpreter evaluates the graph directly), so the recheck is vacuously
// nil — the fallback itself was journalled and counted at install time.
func (d *Device) RecheckTape() error {
	if d.model == nil {
		return ErrNoModel
	}
	if d.prog == nil {
		return nil
	}
	return tapecheck.Check(d.prog)
}

// ModelLatencyNs returns the compiled model's pipeline latency (0 before
// LoadModel).
func (d *Device) ModelLatencyNs() float64 { return d.modelLat }

// ModelII returns the placed design's initiation interval from the CGRA
// timing model.
func (d *Device) ModelII() int { return d.modelII }

// ScheduledII returns the list schedule's measured initiation interval for
// the installed model, or 0 when the interpreter fallback is active.
func (d *Device) ScheduledII() int { return d.schedII }

// ServiceII is the initiation interval the service model charges per ML
// packet: the schedule-measured II when the hot path is compiled, else the
// placed design's II. pipeline.ServiceModel and the netqueue simulator
// derive their per-packet service times from this.
func (d *Device) ServiceII() int { return d.serviceII() }

func (d *Device) serviceII() int {
	if d.schedII > 0 {
		return d.schedII
	}
	return d.modelII
}

// CompiledProgram returns the compiled evaluation tape serving the hot path
// (nil before LoadModel or when scheduling fell back to the interpreter).
func (d *Device) CompiledProgram() *sched.Program { return d.prog }

// TapeVerified reports whether the hot path is serving a compiled tape that
// cleared tapecheck's translation validator. False before LoadModel and while
// the interpreter fallback is active.
func (d *Device) TapeVerified() bool { return d.prog != nil }

// TapeFallbackReason returns why the installed model is served by the
// interpreter instead of a compiled tape — the scheduler's or the translation
// validator's rejection — or "" when the compiled hot path is active.
func (d *Device) TapeFallbackReason() string { return d.tapeErr }
