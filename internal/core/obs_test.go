package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"taurus/internal/compiler"
	"taurus/internal/dataset"
	"taurus/internal/lower"
	"taurus/internal/ml"
	"taurus/internal/obs"
	"taurus/internal/pisa"
)

// buildObsDevice is buildAnomalyDevice with an explicit registry, so the
// tests can inspect exactly the instruments this device registered.
func buildObsDevice(t *testing.T, reg *obs.Registry) (*Device, *dataset.AnomalyGenerator) {
	t.Helper()
	rng := rand.New(rand.NewSource(200))
	gen, err := dataset.NewAnomalyGenerator(dataset.DefaultAnomalyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	X, y := dataset.Split(gen.Records(800))
	n := ml.NewDNN([]int{6, 12, 6, 3, 1}, ml.ReLU, ml.Sigmoid, rng)
	ml.NewTrainer(n, ml.SGDConfig{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 20}, rng).Fit(X, y)
	q, err := ml.Quantize(n, X[:200])
	if err != nil {
		t.Fatal(err)
	}
	g, err := lower.DNN(q, "anomaly")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(6)
	cfg.Obs = reg
	cfg.ObsLabels = []obs.Label{obs.L("dev", "test")}
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadModel(g, q.InputQ, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	return dev, gen
}

// TestStatsConcurrentWithTraffic polls Stats while a worker goroutine drives
// the packet path — the -race regression for Stats() being a synchronised
// snapshot rather than a copy of plainly-mutated fields. (The Device itself
// stays single-writer, as documented; only observation is concurrent.)
func TestStatsConcurrentWithTraffic(t *testing.T) {
	dev, gen := buildObsDevice(t, obs.NewRegistry())
	recs := gen.Records(64)
	ins := make([]PacketIn, len(recs))
	out := make([]Decision, len(recs))
	for i, r := range recs {
		ins[i] = PacketIn{
			Data:     pisa.BuildTCPPacket(uint32(i), 2, uint16(3+i), 4, 0x10, 64),
			Features: r.Features,
		}
	}

	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if err := dev.ProcessBatch(ins, out); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Poll under live traffic: every snapshot must be internally sane even
	// though it races the batches.
	lastProcessed := 0
	for i := 0; i < 500; i++ {
		s := dev.Stats()
		if s.Processed < lastProcessed {
			t.Fatalf("Processed went backwards: %d after %d", s.Processed, lastProcessed)
		}
		lastProcessed = s.Processed
		if got := s.MLInferences + s.Bypassed; got > s.Processed {
			t.Fatalf("ml+bypass = %d exceeds processed = %d", got, s.Processed)
		}
	}
	wg.Wait()

	s := dev.Stats()
	if want := rounds * len(ins); s.Processed != want {
		t.Fatalf("final Processed = %d, want %d", s.Processed, want)
	}
	if s.MLInferences+s.Bypassed != s.Processed {
		t.Fatalf("ml %d + bypass %d != processed %d", s.MLInferences, s.Bypassed, s.Processed)
	}
}

// TestStatsIsRegistryView checks Stats() agrees with the registry snapshot
// and the service-time histogram's invariants: one sample per packet, sum
// equal to the modelled busy time.
func TestStatsIsRegistryView(t *testing.T) {
	reg := obs.NewRegistry()
	dev, gen := buildObsDevice(t, reg)
	recs := gen.Records(100)
	ins := make([]PacketIn, len(recs))
	out := make([]Decision, len(recs))
	for i, r := range recs {
		ins[i] = PacketIn{
			Data:     pisa.BuildTCPPacket(uint32(i), 2, uint16(3+i), 4, 0x10, 64),
			Features: r.Features,
		}
	}
	if err := dev.ProcessBatch(ins, out); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.MLInferences == 0 {
		t.Fatal("no ML inferences — test traffic broken")
	}

	byName := map[string]obs.Metric{}
	for _, m := range reg.Snapshot() {
		byName[m.Name] = m
	}
	for name, want := range map[string]int{
		"taurus.device.processed":     s.Processed,
		"taurus.device.ml_inferences": s.MLInferences,
		"taurus.device.bypassed":      s.Bypassed,
		"taurus.device.forwarded":     s.Forwarded,
		"taurus.device.flagged":       s.Flagged,
		"taurus.device.dropped":       s.Dropped,
		"taurus.device.model_busy_ns": int(s.ModelBusyNs),
	} {
		m, ok := byName[name]
		if !ok {
			t.Errorf("registry missing %s", name)
			continue
		}
		if int(m.Value) != want {
			t.Errorf("%s = %d, Stats says %d", name, m.Value, want)
		}
	}

	h := dev.ServiceHist()
	if got, want := h.Count(), int64(s.MLInferences+s.Bypassed); got != want {
		t.Errorf("service histogram holds %d samples, want ml+bypass = %d", got, want)
	}
	if got, want := h.Sum(), s.ModelBusyNs; got != want {
		t.Errorf("service histogram sum = %g, ModelBusyNs = %g", got, want)
	}
	// The ML service time is the installed schedule's II.
	if q := h.Quantile(0.99); dev.ServiceII() > 1 && q < float64(dev.ServiceII())/2 {
		t.Errorf("p99 service = %g, want near II = %d", q, dev.ServiceII())
	}
}

func TestRecheckTape(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Obs = obs.NewRegistry()
	bare, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.RecheckTape(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("RecheckTape before LoadModel: %v, want ErrNoModel", err)
	}

	dev, _ := buildObsDevice(t, obs.NewRegistry())
	if !dev.TapeVerified() {
		t.Skip("interpreter fallback active; RecheckTape pass-path untestable here")
	}
	if err := dev.RecheckTape(); err != nil {
		t.Fatalf("RecheckTape on a freshly verified tape: %v", err)
	}
}
