package core

import "errors"

// Sentinel errors of the traffic-plane API. Callers branch on these with
// errors.Is; the wrapped messages carry the specifics.
var (
	// ErrNoModel is returned when an operation needs a loaded model
	// (UpdateWeights before LoadModel).
	ErrNoModel = errors.New("core: no model installed")
	// ErrBadFeatureWidth is returned when a feature vector or model input
	// width disagrees with the device's NumFeatures.
	ErrBadFeatureWidth = errors.New("core: feature width mismatch")
	// ErrStructureMismatch is returned when an out-of-band weight update
	// would change the placed design (node kinds, widths or wiring) —
	// structural changes need a full LoadModel (§3.3.1).
	ErrStructureMismatch = errors.New("core: weight update changes model structure")
	// ErrBadConfig is returned for invalid device configurations.
	ErrBadConfig = errors.New("core: invalid device config")
)
