package taurus

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"taurus/internal/obs"
)

// TestObservabilityIntegration is the in-tree version of the
// examples/observe CI gate: one drift-recovery run must journal the complete
// chain — drift.detected, retrain.start, retrain.fit, graphcheck.pass,
// tapecheck.pass, push.done — with monotonic timestamps inside the retrain
// span, and the per-shard service-time histograms exposed over Prometheus
// must agree with pipeline.Stats() totals.
//
// The pipeline binds to a private registry (WithMetrics) so the metric
// assertions are isolated from the rest of the test binary; the controller
// journals to the shared default tracer, so trace assertions only consider
// events emitted after this test's baseline sequence number.
func TestObservabilityIntegration(t *testing.T) {
	const (
		flows     = 256
		batchSize = 2048
		rounds    = 18
		shards    = 4
	)

	reg := NewMetricsRegistry()

	var baseSeq int64
	if evs := Tracer().Events(); len(evs) > 0 {
		baseSeq = evs[len(evs)-1].Seq
	}

	stream, err := NewDriftingStream(DefaultDriftConfig(), 1, flows)
	if err != nil {
		t.Fatal(err)
	}
	net := NewDNN([]int{6, 12, 6, 3, 1}, ReLU, Sigmoid, rand.New(rand.NewSource(1)))
	dep, err := NewDNNDeployable(net, DNNDeployableConfig{Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := stream.Labelled(4000)
	inQ := InputQuantizerFor(recs)
	for i := 0; i < 3; i++ {
		if err := dep.Fit(recs); err != nil {
			t.Fatal(err)
		}
	}
	program, err := dep.Lower(inQ)
	if err != nil {
		t.Fatal(err)
	}

	pl, err := NewPipeline(6, WithShards(shards), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	//gatecheck:verified — Pipeline.LoadModel runs graphcheck on the graph before installing
	if err := pl.LoadModel(program, inQ, CompileOptions{}); err != nil {
		t.Fatal(err)
	}

	ctrl, err := NewController(pl, dep, stream.Labelled, WithRetrainRecords(3000))
	if err != nil {
		t.Fatal(err)
	}

	out := make([]Decision, batchSize)
	for r := 0; r < rounds; r++ {
		phase := float64(r-rounds/3+1) / float64(rounds/3)
		stream.SetPhase(phase)
		ins, _, _ := stream.NextBatch(batchSize)
		if _, err := pl.ProcessBatch(ins, out); err != nil {
			t.Fatal(err)
		}
		if ctrl.Observe(out) {
			if err := ctrl.RetrainNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := ctrl.Stats(); st.Retrains == 0 {
		t.Fatal("drift never triggered a retrain; the workload calibration has regressed")
	}

	auditRecoveryChain(t, baseSeq)
	auditRegistryAgreement(t, reg, pl, shards)
}

// auditRecoveryChain asserts the default trace journal holds the full
// drift-recovery chain, in order, within one span, at non-decreasing
// monotonic timestamps — considering only events this test emitted.
func auditRecoveryChain(t *testing.T, baseSeq int64) {
	t.Helper()
	chain := []string{"drift.detected", "retrain.start", "retrain.fit", "graphcheck.pass", "tapecheck.pass", "push.done"}
	next, span := 0, int64(0)
	var lastNs int64
	for _, ev := range Tracer().Events() {
		if ev.Seq <= baseSeq || next >= len(chain) {
			continue
		}
		if ev.Kind != chain[next] {
			continue
		}
		switch chain[next] {
		case "drift.detected":
			// Unspanned: it precedes the retrain span.
		case "retrain.start":
			span = ev.Span
		default:
			if ev.Span != span {
				continue // another retrain's span
			}
		}
		if ev.Span == span && span != 0 {
			if ev.TimeNs < lastNs {
				t.Fatalf("trace: %s at %dns precedes the previous span event at %dns", ev.Kind, ev.TimeNs, lastNs)
			}
			lastNs = ev.TimeNs
		}
		next++
	}
	if next < len(chain) {
		t.Fatalf("trace: recovery chain incomplete: missing %q", chain[next])
	}
	if span == 0 {
		t.Fatal("trace: retrain.start carried span 0; the retrain lifecycle was not spanned")
	}
}

// auditRegistryAgreement asserts the registry the pipeline was bound to is a
// faithful view of pipeline.Stats(): per-shard taurus.device.processed
// counters sum to Processed, the per-shard service-time histograms cover
// exactly the ML + bypass packets with a Sum matching ModelBusyNs, and the
// Prometheus exposition of that snapshot parses and carries every shard's
// quantile series.
func auditRegistryAgreement(t *testing.T, reg *MetricsRegistry, pl *Pipeline, shards int) {
	t.Helper()
	pst := pl.Stats()
	snap := reg.Snapshot()

	var procSum, svcCount int64
	var svcSum float64
	svcShards := 0
	for _, m := range snap {
		switch m.Name {
		case "taurus.device.processed":
			procSum += m.Value
		case "taurus.device.service_ns":
			svcShards++
			svcCount += m.Count
			svcSum += m.Sum
			if m.Count > 0 && (m.P50 <= 0 || m.P99 < m.P50) {
				t.Errorf("service_ns%v: implausible quantiles p50=%g p99=%g", m.Labels, m.P50, m.P99)
			}
		}
	}
	if svcShards != shards {
		t.Fatalf("registry holds %d service_ns histograms, want one per shard (%d)", svcShards, shards)
	}
	if procSum != int64(pst.Processed) {
		t.Errorf("registry processed sum = %d, pipeline.Stats().Processed = %d", procSum, pst.Processed)
	}
	if want := int64(pst.MLInferences + pst.Bypassed); svcCount != want {
		t.Errorf("service_ns count sum = %d, want MLInferences+Bypassed = %d", svcCount, want)
	}
	// Every sample is an exact small integer (the scheduled II, or one
	// bypass cycle), so the float sum is exact and must equal the busy-time
	// counter view.
	if svcSum != pst.ModelBusyNs {
		t.Errorf("service_ns sum = %g, pipeline.Stats().ModelBusyNs = %g", svcSum, pst.ModelBusyNs)
	}

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	n, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if n == 0 {
		t.Fatal("exposition holds no samples")
	}
	for shard := 0; shard < shards; shard++ {
		needle := `shard="` + string(rune('0'+shard)) + `"`
		found := false
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "taurus_device_service_ns{") &&
				strings.Contains(line, needle) && strings.Contains(line, `quantile="0.99"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("exposition missing p99 series for shard %d", shard)
		}
	}
}
