// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices called out in DESIGN.md. Each
// benchmark reports the headline quantities via b.ReportMetric so
// `go test -bench=. -benchmem` doubles as the reproduction harness
// (cmd/taurus-bench prints the full formatted tables).
package taurus

import (
	"fmt"
	"sync"
	"testing"

	"taurus/internal/accel"
	"taurus/internal/cgra"
	"taurus/internal/compiler"
	"taurus/internal/core"
	"taurus/internal/experiments"
	"taurus/internal/fixed"
	"taurus/internal/hwmodel"
	"taurus/internal/lower"
	"taurus/internal/netsim"
	"taurus/internal/pipeline"
	"taurus/internal/pisa"
	"taurus/internal/trafficgen"
	"taurus/internal/training"
)

var (
	modelsOnce sync.Once
	models     *experiments.Models
	modelsErr  error
)

func sharedModels(b *testing.B) *experiments.Models {
	b.Helper()
	modelsOnce.Do(func() {
		models, modelsErr = experiments.TrainModels(1)
	})
	if modelsErr != nil {
		b.Fatal(modelsErr)
	}
	return models
}

// BenchmarkTable2 regenerates the control-plane accelerator latencies.
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].LatencyMs, "cpu-ms")
	b.ReportMetric(rows[2].LatencyMs, "tpu-ms")
}

// BenchmarkTable3 regenerates the float-vs-fix8 IoT accuracy comparison.
func BenchmarkTable3(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Table3(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Float32, "float32-acc-pct")
	b.ReportMetric(rows[0].Diff, "fix8-diff-pct")
}

// BenchmarkTable4 regenerates per-FU area/power by precision.
func BenchmarkTable4(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.Table4()
	}
	b.ReportMetric(rows[0].AreaUM2, "fix8-um2")
	b.ReportMetric(rows[2].AreaUM2, "fix32-um2")
}

// BenchmarkFigure9 sweeps CU configurations.
func BenchmarkFigure9(b *testing.B) {
	var pts []experiments.Figure9Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.Figure9()
	}
	b.ReportMetric(float64(len(pts)), "configs")
}

// BenchmarkFigure10 compiles the activation suite across stage counts.
func BenchmarkFigure10(b *testing.B) {
	var pts []experiments.Figure10Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = experiments.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkTable5 compiles the four application models.
func BenchmarkTable5(b *testing.B) {
	m := sharedModels(b)
	var rows []experiments.Table5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Table5(m)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[2].LatencyNs), "dnn-ns")
	b.ReportMetric(rows[2].AreaMM2, "dnn-mm2")
	b.ReportMetric(rows[3].AreaMM2, "lstm-mm2")
}

// BenchmarkTable6 compiles the microbenchmark suite.
func BenchmarkTable6(b *testing.B) {
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "InnerProduct" {
			b.ReportMetric(float64(r.LatencyNs), "inner-product-ns")
		}
	}
}

// BenchmarkTable7 sweeps Conv1D unrolling.
func BenchmarkTable7(b *testing.B) {
	var rows []experiments.Table7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Table7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].AreaMM2/rows[0].AreaMM2, "area-scaling-8x")
}

// BenchmarkTable8 runs the end-to-end baseline-vs-Taurus simulation.
func BenchmarkTable8(b *testing.B) {
	m := sharedModels(b)
	var last netsim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := netsim.Run(netsim.DefaultConfig(m.DNN, 1e-3, 100_000))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TaurusF1, "taurus-f1")
	b.ReportMetric(last.BaselineF1, "baseline-f1")
	b.ReportMetric(last.TaurusDetectedPct, "taurus-det-pct")
}

// BenchmarkFigure13 runs one online-training convergence curve.
func BenchmarkFigure13(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		cfg := training.DefaultConfig(1e-3)
		cfg.Updates = 30
		pts, err := training.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		final = training.FinalF1(pts)
	}
	b.ReportMetric(final, "final-f1")
}

// BenchmarkFigure14 runs the small-batch/many-epoch configuration.
func BenchmarkFigure14(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		cfg := training.DefaultConfig(1e-2)
		cfg.BatchSize = 64
		cfg.Epochs = 10
		cfg.Updates = 20
		pts, err := training.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		final = training.FinalF1(pts)
	}
	b.ReportMetric(final, "final-f1")
}

// BenchmarkDriftControlLoop runs the full closed-control-loop drift
// experiment: two pipelines serving drifting traffic, drift detection,
// retrains and live weight pushes.
func BenchmarkDriftControlLoop(b *testing.B) {
	var frozen, loop float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.DriftTable(1, "dnn")
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		frozen, loop = last.FrozenF1, last.LoopF1
	}
	b.ReportMetric(frozen, "frozen-f1")
	b.ReportMetric(loop, "loop-f1")
}

// BenchmarkPerPacketInference measures the simulated data-plane inference
// path itself (quantised DNN through the lowered graph), the operation a
// real Taurus does once per packet.
func BenchmarkPerPacketInference(b *testing.B) {
	m := sharedModels(b)
	codes := make([]int32, 6)
	for i := range codes {
		codes[i] = int32(20 * (i + 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.DNNGraph.Eval(codes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceProcess measures the full device pipeline (parse, MATs,
// registers, inference, verdict) per packet.
func BenchmarkDeviceProcess(b *testing.B) {
	m := sharedModels(b)
	dev, err := core.NewDevice(core.DefaultConfig(6))
	if err != nil {
		b.Fatal(err)
	}
	if err := dev.LoadModel(m.DNNGraph, m.DNN.InputQ, compiler.Options{}); err != nil {
		b.Fatal(err)
	}
	pkt := pisa.BuildTCPPacket(1, 2, 3, 4, 0x10, 64)
	feats := make([]float32, 6)
	for i := range feats {
		feats[i] = float32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Process(core.PacketIn{Data: pkt, Features: feats}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch builds a reusable batch of TCP packets over nflows flows, each
// carrying its flow's feature vector.
func benchBatch(b *testing.B, n, nflows int) ([]core.PacketIn, []core.Decision) {
	b.Helper()
	ins, out, err := trafficgen.AnomalyBatch(11, n, nflows)
	if err != nil {
		b.Fatal(err)
	}
	return ins, out
}

// BenchmarkPipelineThroughput drives 4096-packet batches through the
// sharded traffic plane at shard counts {1, 4, 8}. "model-pps" is the
// modelled hardware throughput (the busiest shard's MapReduce occupancy at
// 1 GHz; shards drain in parallel, so it scales with the shard count);
// "wall-pps" is the host simulation rate. The steady-state batch path must
// report 0 allocs/op.
func BenchmarkPipelineThroughput(b *testing.B) {
	m := sharedModels(b)
	const batchSize, flows = 4096, 512
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			pl, err := pipeline.New(pipeline.Config{Shards: shards, Device: core.DefaultConfig(6)})
			if err != nil {
				b.Fatal(err)
			}
			defer pl.Close()
			if err := pl.LoadModel(m.DNNGraph, m.DNN.InputQ, compiler.Options{}); err != nil {
				b.Fatal(err)
			}
			ins, out := benchBatch(b, batchSize, flows)
			if _, err := pl.ProcessBatch(ins, out); err != nil { // warm up
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var bs pipeline.BatchStats
			for i := 0; i < b.N; i++ {
				bs, err = pl.ProcessBatch(ins, out)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(bs.ModelPacketsPerSec(), "model-pps")
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "wall-pps")
		})
	}
}

// BenchmarkDeviceProcessBatch measures the single-shard zero-allocation
// batch path (the loop each pipeline worker runs).
func BenchmarkDeviceProcessBatch(b *testing.B) {
	m := sharedModels(b)
	dev, err := core.NewDevice(core.DefaultConfig(6))
	if err != nil {
		b.Fatal(err)
	}
	if err := dev.LoadModel(m.DNNGraph, m.DNN.InputQ, compiler.Options{}); err != nil {
		b.Fatal(err)
	}
	ins, out := benchBatch(b, 1024, 128)
	if err := dev.ProcessBatch(ins, out); err != nil { // warm up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.ProcessBatch(ins, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(ins))*float64(b.N)/b.Elapsed().Seconds(), "wall-pps")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md).
// ---------------------------------------------------------------------------

// BenchmarkAblationPrecision compiles the DNN at fix8/fix16/fix32 and
// reports the area cost of wider datapaths (Table 4's motivation).
func BenchmarkAblationPrecision(b *testing.B) {
	m := sharedModels(b)
	for _, p := range []fixed.Precision{fixed.Fix8, fixed.Fix16, fixed.Fix32} {
		b.Run(p.String(), func(b *testing.B) {
			grid := cgra.DefaultGrid()
			grid.Precision = p
			var area float64
			for i := 0; i < b.N; i++ {
				res, err := compiler.Compile(m.DNNGraph, compiler.Options{Grid: grid})
				if err != nil {
					b.Fatal(err)
				}
				area = res.AreaMM2()
			}
			b.ReportMetric(area, "mm2")
		})
	}
}

// BenchmarkAblationActivation compares the three sigmoid realisations
// (Taylor, piecewise, LUT) in area and latency.
func BenchmarkAblationActivation(b *testing.B) {
	suite, err := lower.Microbenchmarks(16)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"SigmoidExp", "SigmoidPW", "ActLUT"} {
		b.Run(name, func(b *testing.B) {
			var res *compiler.Result
			for i := 0; i < b.N; i++ {
				res, err = compiler.Compile(suite[name], compiler.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.AreaMM2(), "mm2")
			b.ReportMetric(float64(res.Stats.LatencyCycles), "latency-ns")
		})
	}
}

// BenchmarkAblationReduceTree contrasts a 16-wide reduction inside one CU
// (tree across lanes) with the same reduction forced across narrow CUs.
func BenchmarkAblationReduceTree(b *testing.B) {
	ip, err := lower.InnerProduct(16)
	if err != nil {
		b.Fatal(err)
	}
	wide := cgra.DefaultGrid() // 16 lanes: reduce fits one CU
	narrow := cgra.DefaultGrid()
	narrow.Lanes = 4 // chunked: 4 iterations per dot product
	for _, cfg := range []struct {
		name string
		grid cgra.GridSpec
	}{{"in-cu-16-lane", wide}, {"chunked-4-lane", narrow}} {
		b.Run(cfg.name, func(b *testing.B) {
			var res *compiler.Result
			for i := 0; i < b.N; i++ {
				res, err = compiler.Compile(ip, compiler.Options{Grid: cfg.grid})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.LatencyCycles), "latency-ns")
			b.ReportMetric(float64(res.Stats.II), "ii")
		})
	}
}

// BenchmarkAblationBypass measures device transit for bypass vs ML packets:
// the bypass path must add no MapReduce latency (§4).
func BenchmarkAblationBypass(b *testing.B) {
	m := sharedModels(b)
	dev, err := core.NewDevice(core.DefaultConfig(6))
	if err != nil {
		b.Fatal(err)
	}
	if err := dev.LoadModel(m.DNNGraph, m.DNN.InputQ, compiler.Options{}); err != nil {
		b.Fatal(err)
	}
	feats := make([]float32, 6)
	mlPkt := pisa.BuildTCPPacket(1, 2, 3, 4, 0x10, 64)
	arp := make([]byte, 14)
	arp[12], arp[13] = 0x08, 0x06

	b.Run("ml-path", func(b *testing.B) {
		var lat float64
		for i := 0; i < b.N; i++ {
			dec, err := dev.Process(core.PacketIn{Data: mlPkt, Features: feats})
			if err != nil {
				b.Fatal(err)
			}
			lat = dec.LatencyNs
		}
		b.ReportMetric(lat, "model-latency-ns")
	})
	b.Run("bypass", func(b *testing.B) {
		var lat float64
		for i := 0; i < b.N; i++ {
			dec, err := dev.Process(core.PacketIn{Data: arp})
			if err != nil {
				b.Fatal(err)
			}
			lat = dec.LatencyNs
		}
		b.ReportMetric(lat, "model-latency-ns")
	})
}

// BenchmarkAblationPacking sweeps the LSTM across CU budgets: fewer units
// mean more sharing (packing), lower area, and a worse initiation interval.
func BenchmarkAblationPacking(b *testing.B) {
	m := sharedModels(b)
	for _, maxCUs := range []int{0, 64, 32} {
		name := "whole-grid"
		if maxCUs > 0 {
			name = "maxcus-" + string(rune('0'+maxCUs/10)) + string(rune('0'+maxCUs%10))
		}
		b.Run(name, func(b *testing.B) {
			var res *compiler.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = compiler.Compile(m.LSTMGraph, compiler.Options{MaxCUs: maxCUs})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.II), "ii")
			b.ReportMetric(res.AreaMM2(), "mm2")
		})
	}
}

// BenchmarkHWModelFullGrid reports the final ASIC's chip-level overheads.
func BenchmarkHWModelFullGrid(b *testing.B) {
	var areaPct, powerPct float64
	for i := 0; i < b.N; i++ {
		g := hwmodel.FullGrid()
		areaPct = g.AreaOverheadPct()
		powerPct = g.PowerOverheadPct()
	}
	b.ReportMetric(areaPct, "area-overhead-pct")
	b.ReportMetric(powerPct, "power-overhead-pct")
}

// BenchmarkAccelVsTaurus reports the reaction-time gap (Table 2 vs Table 5).
func BenchmarkAccelVsTaurus(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cpu := accel.Table2()[0]
		lat, err := cpu.LatencyMs(1)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lat / accel.TaurusLatencyMs
	}
	b.ReportMetric(ratio, "speedup-x")
}
