module taurus

go 1.24
