GO ?= go

.PHONY: build test bench bench-smoke bench-json check lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The traffic-plane benchmarks double as the reproduction harness; -benchmem
# also asserts the zero-allocation hot path (0 B/op on the batch plane).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# One iteration of every benchmark in the module (no unit tests — CI runs
# those separately): cheap enough for CI, and keeps benchmark code compiling
# and running so it can't silently rot. The end-to-end control-loop smoke
# moved to bench-json, which runs the drift and fleet experiments anyway —
# CI runs both targets, so duplicating them here would double the slow part.
# The distfit experiment runs here in rendered-table form: it is the one
# experiment whose wall-clock depends on scheduling (task deadlines,
# stragglers), so smoking it on every run keeps the timing honest.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/taurus-bench -exp distfit
	$(GO) run ./cmd/taurus-bench -exp compile

# Machine-readable benchmark rows — the perf-trajectory artifacts CI uploads
# on every run, so regressions show up as a diffable series over time. Also
# the end-to-end smoke of the control loop (drift) and the fleet loop.
bench-json:
	$(GO) run ./cmd/taurus-bench -exp drift -model svm -json > BENCH_drift.json
	$(GO) run ./cmd/taurus-bench -exp throughput -json > BENCH_throughput.json
	$(GO) run ./cmd/taurus-bench -exp fleet -model svm -json > BENCH_fleet.json
	$(GO) run ./cmd/taurus-bench -exp latency -json > BENCH_latency.json
	$(GO) run ./cmd/taurus-bench -exp distfit -json > BENCH_distfit.json
	$(GO) run ./cmd/taurus-bench -exp compile -json > BENCH_compile.json

check:
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

# Repo-local vet passes: the taurus-lint multichecker runs clonecheck
# (clone-before-push), hotpathcheck (zero-alloc hot paths) and gatecheck
# (verify-before-push) over the production tree (see internal/lint).
lint: check
	$(GO) run ./cmd/taurus-lint .

fmt:
	gofmt -w .
