GO ?= go

.PHONY: build test bench check fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The traffic-plane benchmarks double as the reproduction harness; -benchmem
# also asserts the zero-allocation hot path (0 B/op on the batch plane).
bench:
	$(GO) test -run xxx -bench . -benchmem .

check:
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .
