GO ?= go

.PHONY: build test bench bench-smoke check fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The traffic-plane benchmarks double as the reproduction harness; -benchmem
# also asserts the zero-allocation hot path (0 B/op on the batch plane).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# One iteration of every benchmark in the module (no unit tests — CI runs
# those separately): cheap enough for CI, and keeps benchmark code compiling
# and running so it can't silently rot. The drift invocation smokes the
# model-agnostic control loop end to end on the non-DNN path.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/taurus-bench -exp drift -model svm

check:
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .
