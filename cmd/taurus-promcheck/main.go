// Command taurus-promcheck validates Prometheus text exposition on stdin:
// every non-comment line must parse as a well-formed sample (metric name,
// optional label set, float value, optional timestamp), and at least one
// sample must be present. Exit status 0 means the input is scrapeable;
// 1 means it is not, with the offending line on stderr.
//
// It is the CI gate behind the observe-example job: the example's /metrics
// endpoint is curled and piped through this tool, so an exposition-format
// regression fails the build instead of silently breaking scrapes.
//
// Usage:
//
//	curl -s localhost:9090/metrics | taurus-promcheck
package main

import (
	"fmt"
	"os"

	"taurus/internal/obs"
)

func main() {
	n, err := obs.ParsePrometheus(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taurus-promcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("ok: %d samples\n", n)
}
