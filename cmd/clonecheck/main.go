// Command clonecheck runs the repo's clone-before-push vet pass
// (internal/lint/clonecheck) over one or more directory trees and prints
// every violation. Exit status 1 when any violation is found.
//
// Usage:
//
//	clonecheck [dir ...]   (default ".")
package main

import (
	"fmt"
	"os"

	"taurus/internal/lint/clonecheck"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := false
	for _, root := range roots {
		diags, err := clonecheck.CheckDir(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clonecheck:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad = true
			fmt.Println(d)
		}
	}
	if bad {
		os.Exit(1)
	}
}
