// Command taurus-lint runs the repo's static-analysis suite (internal/lint)
// over one or more directory trees and prints every diagnostic. Exit status
// 1 when any diagnostic is reported, 2 on a driver error.
//
// The suite holds four analyzers, selectable with flags (all on by
// default):
//
//	clonecheck    graphs pushed to UpdateWeights/LoadModel must be owned by
//	              the pushing function (clone-before-push)
//	hotpathcheck  functions annotated `//hotpath: zero-alloc` must stay free
//	              of allocating constructs
//	gatecheck     push call sites must be dominated by a graphcheck gate
//	obsnames      metric registrations must use valid dotted names, one kind
//	              per name
//
// Usage:
//
//	taurus-lint [-clonecheck=false] [-hotpathcheck=false] [-gatecheck=false] [-obsnames=false] [dir ...]   (default ".")
package main

import (
	"flag"
	"fmt"
	"os"

	"taurus/internal/lint"
	"taurus/internal/lint/clonecheck"
	"taurus/internal/lint/gatecheck"
	"taurus/internal/lint/hotpathcheck"
	"taurus/internal/lint/obsnames"
)

func main() {
	// obsnames is constructed per run: its kind census spans every file the
	// run sees, so the instance must not outlive the invocation.
	all := []*lint.Analyzer{clonecheck.Analyzer, hotpathcheck.Analyzer, gatecheck.Analyzer, obsnames.New()}
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Parse()

	var run []*lint.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := false
	for _, root := range roots {
		diags, err := lint.CheckDir(root, run...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taurus-lint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad = true
			fmt.Println(d)
		}
	}
	if bad {
		os.Exit(1)
	}
}
