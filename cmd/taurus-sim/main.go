// Command taurus-sim runs the end-to-end anomaly-detection simulation (§5.2)
// for one sampling rate: a Taurus data plane and the control-plane baseline
// observe the same synthetic NSL-KDD-like traffic, and the tool prints the
// resulting detection quality and control-loop behaviour.
//
// Usage:
//
//	taurus-sim [-sampling 1e-3] [-packets 400000] [-seed 1] [-shards 4]
//	taurus-sim -metrics-addr :9090      # serve /metrics while simulating
//	taurus-sim -trace-dump trace.txt    # journal control-plane events to a file
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"taurus/internal/experiments"
	"taurus/internal/netsim"
	"taurus/internal/obs"
)

func main() {
	sampling := flag.Float64("sampling", 1e-3, "control-plane telemetry sampling rate")
	packets := flag.Int("packets", 400_000, "packets to simulate")
	seed := flag.Int64("seed", 1, "seed for training and traffic")
	shards := flag.Int("shards", 4, "Taurus pipeline shard count")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /trace on this address while the simulation runs")
	traceDump := flag.String("trace-dump", "", "write the control-plane trace journal to this file at exit (.json selects JSON, otherwise text)")
	flag.Parse()

	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, obs.Handler(obs.Default(), obs.DefaultTracer())); err != nil {
				fmt.Fprintln(os.Stderr, "taurus-sim: metrics listener:", err)
			}
		}()
	}
	err := run(*sampling, *packets, *seed, *shards)
	if derr := dumpTrace(*traceDump); err == nil {
		err = derr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "taurus-sim:", err)
		os.Exit(1)
	}
}

// dumpTrace writes the retained trace journal to path ("" = skip).
func dumpTrace(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr := obs.DefaultTracer()
	if strings.HasSuffix(path, ".json") {
		err = tr.WriteJSON(f)
	} else {
		err = tr.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func run(sampling float64, packets int, seed int64, shards int) error {
	if shards <= 0 {
		shards = 4
	}
	fmt.Fprintln(os.Stderr, "training anomaly DNN...")
	m, err := experiments.TrainModels(seed)
	if err != nil {
		return err
	}
	cfg := netsim.DefaultConfig(m.DNN, sampling, packets)
	cfg.Seed = seed
	cfg.Shards = shards
	res, err := netsim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("packets simulated:      %d (%d sampled to the control plane)\n",
		res.PacketsSimulated, res.SampledPackets)
	fmt.Printf("taurus data plane:      %d shards, %d ML inferences, %d bypassed, %d parse errors\n",
		shards, res.TaurusStats.MLInferences, res.TaurusStats.Bypassed, res.TaurusStats.ParseErrors)
	fmt.Printf("control-loop batches:   XDP %.1f, ML %.1f\n", res.XDPBatch, res.RemBatch)
	fmt.Printf("control-loop latency:   XDP %.1f + DB %.1f + ML %.1f + install %.1f = %.1f ms\n",
		res.XDPMs, res.DBMs, res.MLMs, res.InstallMs, res.TotalMs)
	fmt.Printf("rules installed:        %d\n", res.RulesInstalled)
	fmt.Printf("baseline detected:      %.3f%% of anomalous packets (F1 %.3f)\n",
		res.BaselineDetectedPct, res.BaselineF1)
	fmt.Printf("taurus detected:        %.1f%% of anomalous packets (F1 %.1f)\n",
		res.TaurusDetectedPct, res.TaurusF1)
	if res.BaselineDetectedPct > 0 {
		fmt.Printf("taurus advantage:       %.0fx more events detected\n",
			res.TaurusDetectedPct/res.BaselineDetectedPct)
	}
	return nil
}
