// Command taurus-compile trains one of the paper's models, lowers it to
// MapReduce, places it on the CGRA grid, and prints the compilation report:
// units used, latency, initiation interval, area and power.
//
// With -check it instead runs both static verifiers and prints their full
// reports, exiting non-zero if either rejects: the graph verifier
// (internal/graphcheck) — value ranges, resource census, dead nodes, II
// estimate — and the tape verifier (internal/sched/tapecheck), which
// translation-validates the compiled instruction tape against the graph
// (semantic equivalence, interval soundness, weight aliasing, arena and
// schedule bounds). The graph verifier's depth-only CriticalPathCycles/EstII
// are printed next to the list scheduler's measured depth and II
// (internal/sched), with a warning when the estimate turns out optimistic
// about resource contention. -json renders both reports as one JSON document
// instead of text.
//
// Usage:
//
//	taurus-compile -model dnn|svm|kmeans|lstm [-maxcus N] [-seed N] [-check [-json]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"taurus/internal/cgra"
	"taurus/internal/compiler"
	"taurus/internal/experiments"
	"taurus/internal/graphcheck"
	mr "taurus/internal/mapreduce"
	"taurus/internal/sched"
	"taurus/internal/sched/tapecheck"
)

func main() {
	model := flag.String("model", "dnn", "model to compile: dnn, svm, kmeans, lstm")
	maxCUs := flag.Int("maxcus", 0, "cap on compute units (0 = whole grid); forces unit sharing")
	seed := flag.Int64("seed", 1, "training seed")
	check := flag.Bool("check", false, "run the static verifiers and print their reports instead of compiling")
	asJSON := flag.Bool("json", false, "with -check: print both verifier reports as JSON")
	flag.Parse()

	if *asJSON && !*check {
		fmt.Fprintln(os.Stderr, "taurus-compile: -json requires -check")
		os.Exit(2)
	}
	if err := run(*model, *maxCUs, *seed, *check, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "taurus-compile:", err)
		os.Exit(1)
	}
}

func run(model string, maxCUs int, seed int64, check, asJSON bool) error {
	fmt.Fprintln(os.Stderr, "training models...")
	m, err := experiments.TrainModels(seed)
	if err != nil {
		return err
	}
	var g *mr.Graph
	switch model {
	case "dnn":
		g = m.DNNGraph
	case "svm":
		g = m.SVMGraph
	case "kmeans":
		g = m.KMeansGraph
	case "lstm":
		g = m.LSTMGraph
	default:
		return fmt.Errorf("unknown model %q", model)
	}

	if check {
		return runCheck(g, asJSON)
	}

	res, err := compiler.Compile(g, compiler.Options{MaxCUs: maxCUs})
	if err != nil {
		return err
	}
	grid := cgra.DefaultGrid()
	fmt.Printf("model:            %s (%d IR nodes)\n", g.Name, len(g.Nodes))
	fmt.Printf("grid:             %dx%d units, %d-lane %d-stage CUs, %v datapath\n",
		grid.Rows, grid.Cols, grid.Lanes, grid.Stages, grid.Precision)
	fmt.Printf("compute units:    %d of %d\n", res.Usage.CUs, grid.CUCount())
	fmt.Printf("memory units:     %d of %d (%d weight bytes, %d LUTs)\n",
		res.Usage.MUs, grid.MUCount(), res.WeightBytes, res.LUTCount)
	fmt.Printf("latency:          %d cycles = %.0f ns at 1 GHz\n",
		res.Stats.LatencyCycles, res.Stats.LatencyNs())
	fmt.Printf("initiation intvl: %d (%.3f of line rate)\n",
		res.Stats.II, res.Stats.LineRateFraction())
	fmt.Printf("area:             %.3f mm^2 (+%.2f%% of a 500 mm^2 switch, 4 pipelines)\n",
		res.AreaMM2(), res.Usage.AreaOverheadPct())
	fmt.Printf("power:            %.0f mW (+%.2f%% of 270 W)\n",
		res.PowerMW(), res.Usage.PowerOverheadPct())

	// Placement dump: groups per column.
	perCol := map[int]int{}
	for _, grp := range res.Placement.Groups {
		if grp.Kind != cgra.GroupWire {
			perCol[grp.Pos.Col]++
		}
	}
	fmt.Printf("placement:        ")
	for c := 0; c < grid.Cols; c++ {
		fmt.Printf("col%d:%d ", c, perCol[c])
	}
	fmt.Println()
	return nil
}

// runCheck runs both static verifiers and prints their reports; the process
// exits non-zero when either rejects.
func runCheck(g *mr.Graph, asJSON bool) error {
	rep := graphcheck.Verify(g)

	// Compile the tape unverified so a rejected translation still yields the
	// full tapecheck report rather than a bare compile error.
	var trep *tapecheck.Report
	var tapeErr string
	if prog, err := sched.CompileUnverified(g, cgra.DefaultGrid()); err == nil {
		trep = tapecheck.Verify(prog)
	} else {
		tapeErr = err.Error()
	}

	if asJSON {
		out := struct {
			Graph *graphcheck.Report `json:"graph"`
			Tape  *tapecheck.Report  `json:"tape,omitempty"`
			// TapeError is set when the list scheduler refused the graph and
			// no tape exists to verify.
			TapeError string `json:"tape_error,omitempty"`
		}{rep, trep, tapeErr}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Print(rep)
		fmt.Println()
		switch {
		case trep != nil:
			fmt.Print(trep)
		default:
			fmt.Printf("tapecheck: skipped — graph does not schedule: %s\n", tapeErr)
		}
	}
	if !rep.OK() || (trep != nil && !trep.OK()) {
		os.Exit(1)
	}
	if !asJSON {
		// Measured schedule next to the static estimate: the verifier's
		// CriticalPathCycles/EstII are resource-blind, the list schedule is
		// packed under the grid's issue capacity.
		s, err := sched.Plan(g, cgra.DefaultGrid())
		if err != nil {
			return fmt.Errorf("graph verifies but does not schedule: %w", err)
		}
		fmt.Printf("\nscheduled (list schedule on %dx%d grid):\n", s.Spec.Rows, s.Spec.Cols)
		fmt.Printf("  depth:     %d cycles (graphcheck estimate %d)\n", s.Depth, rep.CriticalPathCycles)
		fmt.Printf("  II:        %d (graphcheck estimate %d)\n", s.II, rep.EstII)
		fmt.Printf("  bundles:   %d CU issues, peak width %d, occupancy %.0f%%\n",
			s.CUIssues, s.MaxBundle, 100*s.Occupancy())
		if rep.EstII < s.II {
			fmt.Printf("  WARNING: estimate is optimistic: EstII %d < scheduled II %d (resource contention)\n",
				rep.EstII, s.II)
		}
		if rep.CriticalPathCycles < s.Depth {
			fmt.Printf("  WARNING: estimate is optimistic: critical path %d < scheduled depth %d\n",
				rep.CriticalPathCycles, s.Depth)
		}
	}
	return nil
}
