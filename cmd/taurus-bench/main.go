// Command taurus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	taurus-bench                     # everything
//	taurus-bench -exp table5         # one experiment
//	taurus-bench -packets 100000     # smaller Table 8 run
//	taurus-bench -exp drift -model svm # close the loop over the SVM
//	taurus-bench -exp fleet          # one control plane driving 3 switches
//	taurus-bench -exp latency        # continuous-time queueing: tails, drops, push-under-load
//	taurus-bench -exp distfit        # distributed retrain: scaling + fault-injected drift recovery
//	taurus-bench -exp compile        # interpreted vs compiled evaluation, measured II
//	taurus-bench -exp drift -json    # machine-readable rows (CI artifacts)
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 table8
// fig9 fig10 fig11 fig13 fig14 mats throughput latency drift fleet
// distfit compile. The drift and fleet experiments take -model dnn|svm|iot
// to pick the retrained model family. -json (drift, throughput, latency,
// fleet, distfit and compile only) replaces the rendered table with the
// experiment's data rows as JSON, for the benchmark artifacts CI
// accumulates; every -json envelope carries an "obs" block — the full
// metrics-registry snapshot at the end of the run. -metrics-addr serves
// /metrics (Prometheus text), /metrics.json, /trace and /trace.json while
// the run executes; -trace-dump writes the control-plane trace journal to a
// file at exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"taurus/internal/experiments"
	"taurus/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..table8, fig9..fig14, mats, throughput, latency, drift, fleet, distfit, compile)")
	packets := flag.Int("packets", 400_000, "packets for the Table 8 simulation")
	seed := flag.Int64("seed", 1, "training seed")
	driftModel := flag.String("model", "dnn", "model family for the drift and fleet experiments (dnn, svm, iot)")
	jsonOut := flag.Bool("json", false, "emit the experiment's data rows as JSON (drift, throughput, latency, fleet, distfit only)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /trace on this address while the run executes")
	traceDump := flag.String("trace-dump", "", "write the control-plane trace journal to this file at exit (.json selects JSON, otherwise text)")
	flag.Parse()

	if *metricsAddr != "" {
		go serveMetrics(*metricsAddr)
	}
	var err error
	if *jsonOut {
		err = runJSON(*exp, *seed, *driftModel)
	} else {
		err = run(*exp, *packets, *seed, *driftModel)
	}
	if derr := dumpTrace(*traceDump); err == nil {
		err = derr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "taurus-bench:", err)
		os.Exit(1)
	}
}

// serveMetrics exposes the default registry and trace journal for scrapes
// while the experiments run; the listener dies with the process.
func serveMetrics(addr string) {
	if err := http.ListenAndServe(addr, obs.Handler(obs.Default(), obs.DefaultTracer())); err != nil {
		fmt.Fprintln(os.Stderr, "taurus-bench: metrics listener:", err)
	}
}

// dumpTrace writes the retained trace journal to path ("" = skip).
func dumpTrace(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr := obs.DefaultTracer()
	if strings.HasSuffix(path, ".json") {
		err = tr.WriteJSON(f)
	} else {
		err = tr.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// benchOutput is the envelope of every -json run: the experiment's rows
// plus an obs block — the full metrics-registry snapshot at the end of the
// run, so CI artifacts carry the telemetry beside the results. The field
// set is pinned by TestBenchOutputSchema.
type benchOutput struct {
	Experiment string       `json:"experiment"`
	Model      string       `json:"model,omitempty"`
	Seed       int64        `json:"seed"`
	Rows       any          `json:"rows"`
	Obs        []obs.Metric `json:"obs"`
}

// runJSON emits one experiment's rows as indented JSON on stdout — the
// machine-readable benchmark trajectory CI uploads as artifacts.
func runJSON(exp string, seed int64, driftModel string) error {
	out := benchOutput{Experiment: strings.ToLower(exp), Seed: seed}

	switch out.Experiment {
	case "drift":
		rows, _, err := experiments.DriftTable(seed, driftModel)
		if err != nil {
			return err
		}
		out.Model, out.Rows = driftModel, rows
	case "fleet":
		rows, _, err := experiments.FleetTable(seed, driftModel)
		if err != nil {
			return err
		}
		out.Model, out.Rows = driftModel, rows
	case "distfit":
		res, _, err := experiments.DistFitTable(seed)
		if err != nil {
			return err
		}
		out.Rows = res
	case "throughput":
		models, err := experiments.TrainModels(seed)
		if err != nil {
			return err
		}
		rows, _, err := experiments.Throughput(models)
		if err != nil {
			return err
		}
		out.Rows = rows
	case "latency":
		models, err := experiments.TrainModels(seed)
		if err != nil {
			return err
		}
		res, _, err := experiments.Latency(models, seed)
		if err != nil {
			return err
		}
		out.Rows = res
	case "compile":
		models, err := experiments.TrainModels(seed)
		if err != nil {
			return err
		}
		rows, _, err := experiments.CompileBench(models)
		if err != nil {
			return err
		}
		out.Rows = rows
	default:
		return fmt.Errorf("-json supports drift, throughput, latency, fleet, distfit and compile, not %q", exp)
	}
	out.Obs = obs.Default().Snapshot()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func run(exp string, packets int, seed int64, driftModel string) error {
	want := func(name string) bool { return exp == "all" || strings.EqualFold(exp, name) }

	needModels := exp == "all" || want("table5") || want("table8") || want("fig11") || want("mats") || want("throughput") || want("latency") || want("compile")
	var models *experiments.Models
	if needModels {
		fmt.Fprintln(os.Stderr, "training application models...")
		m, err := experiments.TrainModels(seed)
		if err != nil {
			return err
		}
		models = m
	}

	ran := false
	emit := func(text string) {
		fmt.Println(text)
		ran = true
	}

	if want("table1") {
		emit(experiments.Table1())
	}
	if want("table2") {
		_, text, err := experiments.Table2()
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("table3") {
		_, text, err := experiments.Table3(seed)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("table4") {
		_, text := experiments.Table4()
		emit(text)
	}
	if want("fig9") {
		_, text := experiments.Figure9()
		emit(text)
	}
	if want("fig10") {
		_, text, err := experiments.Figure10()
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("table5") {
		_, text, err := experiments.Table5(models)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("fig11") {
		text, err := experiments.Figure11(models)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("table6") {
		_, text, err := experiments.Table6()
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("table7") {
		_, text, err := experiments.Table7()
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("mats") {
		text, err := experiments.MATComparison(models)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("throughput") {
		_, text, err := experiments.Throughput(models)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("compile") {
		fmt.Fprintln(os.Stderr, "measuring interpreted vs compiled evaluation...")
		_, text, err := experiments.CompileBench(models)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("latency") {
		fmt.Fprintln(os.Stderr, "running continuous-time queueing experiment...")
		_, text, err := experiments.Latency(models, seed)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("drift") {
		fmt.Fprintf(os.Stderr, "running closed-control-loop drift experiment (%s)...\n", driftModel)
		_, text, err := experiments.Drift(seed, driftModel)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("fleet") {
		fmt.Fprintf(os.Stderr, "running fleet control-plane experiment (%s)...\n", driftModel)
		_, text, err := experiments.FleetTable(seed, driftModel)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("distfit") {
		fmt.Fprintln(os.Stderr, "running distributed-retrain experiment...")
		_, text, err := experiments.DistFitTable(seed)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("table8") {
		fmt.Fprintln(os.Stderr, "running end-to-end simulation...")
		_, text, err := experiments.Table8(models, packets)
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("fig13") {
		_, text, err := experiments.Figure13()
		if err != nil {
			return err
		}
		emit(text)
	}
	if want("fig14") {
		_, text, err := experiments.Figure14()
		if err != nil {
			return err
		}
		emit(text)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
