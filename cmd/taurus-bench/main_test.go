package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"taurus/internal/obs"
)

// TestBenchOutputSchema pins the -json envelope: the top-level keys CI
// tooling indexes by, and the shape of the obs block's entries. Renaming or
// dropping a field breaks downstream artifact consumers — this test is the
// tripwire.
func TestBenchOutputSchema(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("taurus.device.processed", obs.L("dev", "0")).Add(3)
	reg.Histogram("taurus.device.service_ns", obs.L("dev", "0")).Record(140)

	out := benchOutput{
		Experiment: "drift",
		Model:      "dnn",
		Seed:       1,
		Rows:       []int{1, 2, 3},
		Obs:        reg.Snapshot(),
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}

	var got map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"experiment", "model", "seed", "rows", "obs"} {
		if _, ok := got[key]; !ok {
			t.Errorf("envelope missing key %q", key)
		}
	}
	if len(got) != 5 {
		t.Errorf("envelope has %d keys, want 5: %v", len(got), keys(got))
	}

	var obsBlock []map[string]json.RawMessage
	if err := json.Unmarshal(got["obs"], &obsBlock); err != nil {
		t.Fatalf("obs block: %v", err)
	}
	if len(obsBlock) != 2 {
		t.Fatalf("obs block has %d metrics, want 2", len(obsBlock))
	}
	// The counter renders name/labels/kind/value; the histogram additionally
	// count/sum/quantiles. Spot-check the keys consumers address.
	sawHist := false
	for _, m := range obsBlock {
		for _, key := range []string{"name", "kind"} {
			if _, ok := m[key]; !ok {
				t.Errorf("obs metric missing key %q: %v", key, keys(m))
			}
		}
		if string(m["kind"]) == `"histogram"` {
			sawHist = true
			for _, key := range []string{"count", "sum", "p50", "p99"} {
				if _, ok := m[key]; !ok {
					t.Errorf("histogram metric missing key %q: %v", key, keys(m))
				}
			}
		}
	}
	if !sawHist {
		t.Error("obs block has no histogram metric")
	}

	// A model-less experiment must omit "model" entirely, not emit "".
	buf.Reset()
	if err := enc.Encode(benchOutput{Experiment: "distfit", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	clear(got)
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got["model"]; ok {
		t.Error("empty model should be omitted from the envelope")
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
