// Package taurus is the public API of the Taurus reproduction: a data-plane
// architecture for per-packet ML (Swamy et al., ASPLOS 2022).
//
// The library is organised the way the hardware is (Figure 6):
//
//   - MapReduce programs (the paper's P4 MapReduce control block, Figure 4)
//     are built with NewProgram and the Builder's Map/Reduce/LUT methods, or
//     by lowering a trained model with LowerDNN / LowerSVM / LowerKMeans /
//     LowerLSTMStep.
//
//   - Compile places a program onto the CGRA grid of compute and memory
//     units (§4), returning latency, initiation interval, area and power —
//     the quantities behind Tables 5-7.
//
//   - NewDevice assembles a full Taurus switch: parser, preprocessing MATs
//     with stateful feature registers, the MapReduce block with a bypass
//     path, postprocessing MATs and a scheduler. LoadModel installs a
//     compiled program; UpdateWeights applies control-plane weight pushes
//     (Figure 1) without re-placing the design.
//
//   - The ML subpackage types (DNN, SVM, KMeans, LSTM) cover the paper's
//     application suite with float training for the control plane and
//     bit-exact 8-bit inference for the data plane.
//
// Everything is pure Go and deterministic under a fixed seed.
package taurus

import (
	"taurus/internal/cgra"
	"taurus/internal/compiler"
	"taurus/internal/core"
	"taurus/internal/dataset"
	"taurus/internal/fixed"
	"taurus/internal/lower"
	"taurus/internal/mapreduce"
	"taurus/internal/ml"
	"taurus/internal/pisa"
	"taurus/internal/tensor"
)

// MapReduce program construction (Figure 4).
type (
	// Builder assembles a MapReduce dataflow program.
	Builder = mapreduce.Builder
	// Graph is a complete MapReduce program.
	Graph = mapreduce.Graph
	// Value is a handle to an intermediate result in a Builder.
	Value = mapreduce.Value
)

// NewProgram starts a MapReduce program (the paper's dedicated P4 control
// block).
func NewProgram(name string) *Builder { return mapreduce.NewBuilder(name) }

// Compilation onto the CGRA grid (§4).
type (
	// CompileOptions configures placement (grid, unit caps for unrolling).
	CompileOptions = compiler.Options
	// Compiled is a placed design with timing and resource reports.
	Compiled = compiler.Result
	// GridSpec describes a MapReduce block configuration.
	GridSpec = cgra.GridSpec
)

// Compile lowers a MapReduce program onto the grid.
func Compile(g *Graph, opts CompileOptions) (*Compiled, error) {
	return compiler.Compile(g, opts)
}

// DefaultGrid returns the final ASIC configuration: a 12x10 grid with 3:1
// CU:MU ratio, 16-lane 4-stage CUs, 8-bit datapath (§5.1.1).
func DefaultGrid() GridSpec { return cgra.DefaultGrid() }

// The integrated device (Figure 6).
type (
	// Device is a Taurus switch.
	Device = core.Device
	// DeviceConfig parameterises a Device.
	DeviceConfig = core.Config
	// PacketIn is one packet presented to a Device.
	PacketIn = core.PacketIn
	// Decision is a per-packet outcome.
	Decision = core.Decision
	// Verdict is the postprocessing decision.
	Verdict = core.Verdict
)

// Verdicts.
const (
	Forward = core.Forward
	Flag    = core.Flag
	Drop    = core.Drop
)

// NewDevice builds a Taurus switch.
func NewDevice(cfg DeviceConfig) (*Device, error) { return core.NewDevice(cfg) }

// DefaultDeviceConfig returns the anomaly-detection device configuration.
func DefaultDeviceConfig(numFeatures int) DeviceConfig { return core.DefaultConfig(numFeatures) }

// Machine-learning models (§5.1.2) and quantisation (Table 3).
type (
	// DNN is a float feed-forward network (control-plane training).
	DNN = ml.DNN
	// QuantizedDNN is its 8-bit data-plane counterpart.
	QuantizedDNN = ml.QuantizedDNN
	// SVM is an RBF support-vector machine.
	SVM = ml.SVM
	// KMeans is a nearest-centroid classifier.
	KMeans = ml.KMeans
	// LSTM is the Indigo-style congestion-control model.
	LSTM = ml.LSTM
	// Quantizer maps floats to symmetric int8.
	Quantizer = fixed.Quantizer
	// Vec is a dense float32 feature vector.
	Vec = tensor.Vec
)

// Lowerings: trained model -> MapReduce program.
var (
	// LowerDNN lowers a quantised DNN (bit-exact with QuantizedDNN).
	LowerDNN = lower.DNN
	// LowerKMeans lowers nearest-centroid classification.
	LowerKMeans = lower.KMeans
	// LowerSVM lowers an RBF SVM with a kernel lookup table.
	LowerSVM = lower.SVM
	// LowerLSTMStep lowers one recurrent step of an LSTM.
	LowerLSTMStep = lower.LSTMStep
)

// Synthetic workloads (§5.2.2 substitutes for NSL-KDD and TMC IoT traces).
type (
	// AnomalyConfig parameterises the KDD-like generator.
	AnomalyConfig = dataset.AnomalyConfig
	// AnomalyGenerator produces labelled connection records.
	AnomalyGenerator = dataset.AnomalyGenerator
	// IoTConfig parameterises the IoT traffic generator.
	IoTConfig = dataset.IoTConfig
	// IoTGenerator produces labelled IoT samples.
	IoTGenerator = dataset.IoTGenerator
	// Record is one labelled connection.
	Record = dataset.Record
)

// Dataset constructors and helpers.
var (
	// NewAnomalyGenerator builds a KDD-like generator.
	NewAnomalyGenerator = dataset.NewAnomalyGenerator
	// DefaultAnomalyConfig is calibrated to the paper's F1 operating point.
	DefaultAnomalyConfig = dataset.DefaultAnomalyConfig
	// NewIoTGenerator builds an IoT traffic generator.
	NewIoTGenerator = dataset.NewIoTGenerator
	// DefaultIoTConfig is the Table 3 configuration.
	DefaultIoTConfig = dataset.DefaultIoTConfig
	// KMeansIoTConfig is the Table 5 KMeans configuration.
	KMeansIoTConfig = dataset.KMeansIoTConfig
	// SplitRecords converts records to (X, y) with y=1 for anomalies.
	SplitRecords = dataset.Split
)

// Training helpers.
type (
	// SGDConfig controls DNN training.
	SGDConfig = ml.SGDConfig
	// Trainer performs minibatch SGD on a DNN.
	Trainer = ml.Trainer
)

// Model constructors.
var (
	// NewDNN builds a float feed-forward network.
	NewDNN = ml.NewDNN
	// NewTrainer wires a trainer to a DNN.
	NewTrainer = ml.NewTrainer
	// QuantizeDNN converts a trained DNN to 8-bit (Table 3's scheme).
	QuantizeDNN = ml.Quantize
	// TrainKMeans runs k-means++ plus Lloyd iterations.
	TrainKMeans = ml.TrainKMeans
	// TrainSVM fits an RBF SVM with SMO.
	TrainSVM = ml.TrainSVM
	// NewLSTM builds an Indigo-style LSTM.
	NewLSTM = ml.NewLSTM
	// NewQuantizer builds a symmetric int8 quantiser for [-absMax, absMax].
	NewQuantizer = fixed.NewQuantizer
	// QuantizerFor calibrates a quantiser from observed values.
	QuantizerFor = fixed.QuantizerFor
)

// Activations.
const (
	// ReLU is max(0, x).
	ReLU = ml.ReLU
	// LeakyReLU is x for x>=0 and 0.01x otherwise.
	LeakyReLU = ml.LeakyReLU
	// Sigmoid is the logistic function.
	Sigmoid = ml.Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh = ml.Tanh
	// LinearAct applies no non-linearity.
	LinearAct = ml.Linear
)

// BuildTCPPacket serialises a minimal Ethernet+IPv4+TCP packet for
// Device.Process.
var BuildTCPPacket = pisa.BuildTCPPacket
