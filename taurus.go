// Package taurus is the public API of the Taurus reproduction: a data-plane
// architecture for per-packet ML (Swamy et al., ASPLOS 2022).
//
// The v1 surface is organised around the traffic plane:
//
//   - NewPipeline builds the primary entry point for serving traffic: a
//     sharded Pipeline of N Taurus devices. Packets are routed to shards by
//     a five-tuple hash (per-flow register state stays shard-local), batches
//     fan out across worker goroutines via ProcessBatch, and control-plane
//     weight pushes (Figure 1) reach every shard live via UpdateWeights.
//     The steady-state batch path performs no heap allocation.
//
//   - NewDevice builds a single Taurus switch — parser, preprocessing MATs
//     with stateful feature registers, the MapReduce block with a bypass
//     path, postprocessing MATs — for callers that want one shard and no
//     goroutines. Process is the one-packet convenience wrapper;
//     ProcessBatch is the same zero-allocation hot path the Pipeline runs.
//
//   - NewController closes the control loop over a running Pipeline
//     (Figure 1, §3.3.1): feed it the data plane's decisions with Observe,
//     and it detects concept drift (flagged-rate, mean-score or PSI
//     histogram shift against a reference window), retrains its model on
//     freshly labelled telemetry from a LabelSource, requantises against
//     the deployed input domain, and pushes the new weights to every shard
//     via UpdateWeights — out-of-band, while batches keep flowing. The
//     controller is model-agnostic: it drives any Deployable — wrap a DNN
//     with NewDNNDeployable, an RBF SVM with NewSVMDeployable, a KMeans
//     classifier with NewKMeansDeployable (NewDNNController remains as the
//     one-call DNN shape). Run it synchronously (Observe + RetrainNow) for
//     deterministic experiments or in the background (Start/Close) for live
//     serving; tune it with WithRetrainInterval, WithDriftStatistic
//     (DriftMeanShift, DriftPSI or DriftKS), WithDriftThresholds,
//     WithAdaptiveRetrain and friends. NewDriftingStream and
//     NewDriftingIoTStream generate matching concept-drifting workloads,
//     with WithLabelDelay and WithLabelNoise for label realism.
//
//   - NewFleet scales the control plane out: one trainer driving N
//     registered switches, each with its own drift detector and traffic
//     mix. Drift on any member pools labels from the drifted members
//     (weighted by traffic share), retrains the one shared model and pushes
//     the lowered graph to every switch atomically. Membership churns
//     live: Deregister retires a switch, and a late Register catches the
//     joiner up with the current graph. NewDriftingStreams builds the
//     matching per-member workloads. When one goroutine's Fit becomes the
//     scaling wall, WithDistFit shards the retrain coordinator/worker
//     style (fixed chunk schedule, deadline re-issue, checkpointed rounds)
//     while keeping the pushed graph bit-identical to the single-process
//     merge — every Deployable family implements the PartialFitter
//     contract it needs.
//
//   - Metrics and Tracer expose the observability layer (internal/obs):
//     every device, pipeline, controller and fleet binds its counters and
//     latency histograms to one process-wide registry (stable dotted names,
//     allocation-free hot-path updates), and every control-plane action —
//     drift detection, retrain rounds, graph and tape verification verdicts,
//     pushes and rollbacks — lands in a bounded trace journal. Snapshot the
//     registry programmatically, serve it over HTTP with MetricsHandler
//     (Prometheus text and JSON), or rebind a component to a private
//     registry with WithMetrics. The existing Stats() methods are views
//     over the same instruments.
//
//   - NewSimulator asks the production question the batch plane cannot:
//     what latency and loss do packets see when arrivals are a process in
//     time? It is a discrete-event, continuous-time queueing simulator over
//     a deployed Pipeline's measured service model (II ns per ML packet at
//     the busiest shard, finite per-shard FIFO queues), fed by a pluggable
//     ArrivalProcess — NewPoissonArrivals, bursty NewOnOffArrivals, or
//     NewReplayArrivals replaying a DriftingStream with its labels intact —
//     and reporting p50/p99/p999 transit latency, queue depths and drops.
//     Control-plane pushes compose with it: wire WithOnPush to
//     Simulator.Push and a retrain's weight write becomes a simulated
//     per-shard service stall, so "does a push under 80% load cost latency
//     or drops?" is one experiment. MaxSustainableLoad binary-searches the
//     drop-bounded capacity of a deployment under any arrival shape.
//
//   - Both constructors take functional options: WithGrid, WithFlowTable,
//     WithThreshold, WithDropOnAnomaly, and (pipelines only) WithShards.
//     Failures surface sentinel errors — ErrNoModel, ErrBadFeatureWidth,
//     ErrStructureMismatch, ErrBadConfig — for errors.Is dispatch.
//
//   - MapReduce programs (the paper's P4 MapReduce control block, Figure 4)
//     are built with NewProgram and the Builder's Map/Reduce/LUT methods, or
//     by lowering a trained model with LowerDNN / LowerSVM / LowerKMeans /
//     LowerLSTMStep. Compile places a program onto the CGRA grid of compute
//     and memory units (§4), returning latency, initiation interval, area
//     and power — the quantities behind Tables 5-7. LoadModel installs a
//     compiled program on a Device or every Pipeline shard.
//
//   - The ML subpackage types (DNN, SVM, KMeans, LSTM) cover the paper's
//     application suite with float training for the control plane and
//     bit-exact 8-bit inference for the data plane.
//
// Everything is pure Go and deterministic under a fixed seed.
package taurus

import (
	"fmt"
	"net/http"
	"time"

	"taurus/internal/cgra"
	"taurus/internal/compiler"
	"taurus/internal/controlplane"
	"taurus/internal/core"
	"taurus/internal/dataset"
	"taurus/internal/distfit"
	"taurus/internal/fixed"
	"taurus/internal/graphcheck"
	"taurus/internal/lower"
	"taurus/internal/mapreduce"
	"taurus/internal/ml"
	"taurus/internal/model"
	"taurus/internal/netqueue"
	"taurus/internal/obs"
	"taurus/internal/pipeline"
	"taurus/internal/pisa"
	"taurus/internal/sched"
	"taurus/internal/sched/tapecheck"
	"taurus/internal/tensor"
	"taurus/internal/trafficgen"
)

// MapReduce program construction (Figure 4).
type (
	// Builder assembles a MapReduce dataflow program.
	Builder = mapreduce.Builder
	// Graph is a complete MapReduce program.
	Graph = mapreduce.Graph
	// Value is a handle to an intermediate result in a Builder.
	Value = mapreduce.Value
)

// NewProgram starts a MapReduce program (the paper's dedicated P4 control
// block).
func NewProgram(name string) *Builder { return mapreduce.NewBuilder(name) }

// Evaluator interprets a MapReduce program with preallocated buffers: write
// codes into Input(i), call Eval, read Output(i). It is the allocation-free
// reference semantics the device hot path runs per packet.
type Evaluator = mapreduce.Evaluator

// NewEvaluator validates the program and preallocates every intermediate.
func NewEvaluator(g *Graph) (*Evaluator, error) { return mapreduce.NewEvaluator(g) }

// Static verification: the pre-push graph gate (internal/graphcheck).
// Every push path — LoadModel, UpdateWeights, Controller and Fleet retrain
// pushes, the distfit merge accept — runs the same analyses and refuses a
// graph that fails them; VerifyGraph exposes the full report directly.
type (
	// GraphReport is the verifier's full result: per-node findings, the
	// resource census against the grid, dead-node diagnostics and the
	// depth-based initiation-interval estimate. OK() is the gate; String()
	// renders the report taurus-compile -check prints.
	GraphReport = graphcheck.Report
	// GraphFinding is one diagnostic, anchored to the offending node.
	GraphFinding = graphcheck.Finding
	// GraphCheckOptions overrides the verifier's grid and input ranges.
	GraphCheckOptions = graphcheck.Options
)

// Static-verification sentinels, for errors.Is.
var (
	// ErrBadGraph: a graph failed static verification (saturation, resource
	// overflow, or a Validate rejection).
	ErrBadGraph = graphcheck.ErrBadGraph
	// ErrGraphIncompatible: a push is not a weight-only update of the
	// previously pushed structure.
	ErrGraphIncompatible = graphcheck.ErrIncompatible
)

// Graph verification entry points.
var (
	// VerifyGraph runs value-range, resource, dead-node and schedule
	// analysis on g against the default grid and returns the full report.
	VerifyGraph = graphcheck.Verify
	// VerifyGraphWith is VerifyGraph against explicit options (target grid,
	// input ranges).
	VerifyGraphWith = graphcheck.VerifyWith
	// CheckGraph is the gate form: nil when g verifies clean, the first
	// error finding (wrapping ErrBadGraph) otherwise.
	CheckGraph = graphcheck.Check
	// GraphCompatible reports whether swapping old for new is a weight-only
	// update: identical node kinds, widths, wiring and declared IO, with
	// only constants, multipliers and tables free to change.
	GraphCompatible = graphcheck.Compatible
)

// Compilation onto the CGRA grid (§4).
type (
	// CompileOptions configures placement (grid, unit caps for unrolling).
	CompileOptions = compiler.Options
	// Compiled is a placed design with timing and resource reports.
	Compiled = compiler.Result
	// GridSpec describes a MapReduce block configuration.
	GridSpec = cgra.GridSpec
)

// Compile lowers a MapReduce program onto the grid.
func Compile(g *Graph, opts CompileOptions) (*Compiled, error) {
	return compiler.Compile(g, opts)
}

// Scheduled evaluation (internal/sched): the compiled counterpart of the
// Evaluator. PlanSchedule list-schedules a validated graph into VLIW-style
// issue bundles under the grid's CU/MU capacity and reports the measured
// depth and initiation interval (superseding GraphReport's depth-only
// estimate); CompileProgram additionally emits the fused, allocation-free
// instruction tape the device hot path runs, with batch-vectorised
// RunBatch. Devices compile installed models automatically — these entry
// points are for inspecting or benchmarking a schedule directly.
type (
	// Schedule is a resource-constrained bundle schedule of one graph;
	// String() renders the per-cycle bundles.
	Schedule = sched.Schedule
	// CompiledProgram is the executable instruction tape; Run/RunBatch are
	// bit-exact with Graph.Eval and allocate nothing.
	CompiledProgram = sched.Program
)

// PlanSchedule list-schedules g on the grid.
func PlanSchedule(g *Graph, spec GridSpec) (*Schedule, error) { return sched.Plan(g, spec) }

// CompileProgram plans g and emits its instruction tape.
func CompileProgram(g *Graph, spec GridSpec) (*CompiledProgram, error) {
	return sched.Compile(g, spec)
}

// Translation validation: the post-compile tape gate (internal/sched/
// tapecheck). CompileProgram (and every Device install) already refuses a
// tape that fails it; these entry points expose the full report for
// inspection — taurus-compile -check prints it, and callers holding a tape
// compiled elsewhere can re-verify it.
type (
	// TapeReport is the validator's full result: semantic equivalence of
	// every output lane against the source graph, interval soundness of each
	// tape cell, the weight-aliasing audit and the arena/schedule bounds.
	TapeReport = tapecheck.Report
	// TapeFinding is one diagnostic, anchored to the offending instruction.
	TapeFinding = tapecheck.Finding
)

// ErrBadTape: a compiled tape failed translation validation.
var ErrBadTape = tapecheck.ErrBadTape

// Tape verification entry points.
var (
	// VerifyTape validates a compiled tape against its source graph and
	// returns the full report.
	VerifyTape = tapecheck.Verify
	// CheckTape is the gate form: nil when the tape verifies clean, an error
	// wrapping ErrBadTape otherwise. CompileProgram runs it implicitly.
	CheckTape = tapecheck.Check
)

// DefaultGrid returns the final ASIC configuration: a 12x10 grid with 3:1
// CU:MU ratio, 16-lane 4-stage CUs, 8-bit datapath (§5.1.1).
func DefaultGrid() GridSpec { return cgra.DefaultGrid() }

// The traffic plane (Figure 6 instantiated per shard).
type (
	// Device is a single Taurus switch (one shard, no goroutines).
	Device = core.Device
	// Pipeline is the sharded, batched traffic plane over N devices.
	Pipeline = pipeline.Pipeline
	// BatchStats summarises one Pipeline.ProcessBatch call, including the
	// modelled drain time of the busiest shard.
	BatchStats = pipeline.BatchStats
	// PacketIn is one packet presented to a Device or Pipeline.
	PacketIn = core.PacketIn
	// Decision is a per-packet outcome.
	Decision = core.Decision
	// Verdict is the postprocessing decision.
	Verdict = core.Verdict
	// Stats counts device (or merged pipeline) activity.
	Stats = core.Stats
)

// Verdicts.
const (
	Forward = core.Forward
	Flag    = core.Flag
	Drop    = core.Drop
)

// Sentinel errors of the traffic plane, for errors.Is.
var (
	// ErrNoModel: the operation needs a loaded model.
	ErrNoModel = core.ErrNoModel
	// ErrBadFeatureWidth: a feature vector or model input width disagrees
	// with the device's feature count.
	ErrBadFeatureWidth = core.ErrBadFeatureWidth
	// ErrStructureMismatch: a weight update would change the placed design.
	ErrStructureMismatch = core.ErrStructureMismatch
	// ErrBadConfig: invalid construction options or batch arguments.
	ErrBadConfig = core.ErrBadConfig
)

// Option configures NewDevice and NewPipeline.
type Option func(*options)

type options struct {
	dev    core.Config
	shards int
}

// WithGrid sets the MapReduce block configuration (DefaultGrid otherwise).
func WithGrid(g GridSpec) Option { return func(o *options) { o.dev.Grid = g } }

// WithFlowTable sets the number of per-flow register slots for feature
// accumulation (default 4096; power of two recommended).
func WithFlowTable(n int) Option { return func(o *options) { o.dev.FlowTableSize = n } }

// WithThreshold sets the postprocessing cut on the model's output code:
// score >= t is treated as anomalous (default 64, the §5.2.2 operating
// point).
func WithThreshold(t int32) Option { return func(o *options) { o.dev.Threshold = t } }

// WithDropOnAnomaly makes anomalous packets Drop instead of the default
// Flag.
func WithDropOnAnomaly() Option { return func(o *options) { o.dev.DropOnAnomaly = true } }

// WithShards sets the pipeline's shard count (default 4). NewDevice ignores
// it — a Device is always a single shard.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithMetrics binds the device or pipeline to reg instead of the
// process-wide default registry, under the given labels instead of the
// automatic ordinals ({dev=N} for a device, {pipe=N, shard=i} per pipeline
// shard). Two components given the same registry and the same explicit
// labels share instruments — their counts merge.
func WithMetrics(reg *MetricsRegistry, labels ...MetricLabel) Option {
	return func(o *options) {
		o.dev.Obs = reg
		o.dev.ObsLabels = labels
	}
}

// DefaultShards is the shard count NewPipeline uses when WithShards is not
// given.
const DefaultShards = pipeline.DefaultShards

func buildOptions(numFeatures int, opts []Option) options {
	o := options{dev: core.DefaultConfig(numFeatures), shards: DefaultShards}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// NewDevice builds a single Taurus switch with numFeatures model inputs.
func NewDevice(numFeatures int, opts ...Option) (*Device, error) {
	o := buildOptions(numFeatures, opts)
	return core.NewDevice(o.dev)
}

// NewPipeline builds the sharded traffic plane: WithShards(n) devices
// behind one batched front end. Load a model with LoadModel, drive traffic
// with ProcessBatch, push weight updates live with UpdateWeights, and Close
// when done.
func NewPipeline(numFeatures int, opts ...Option) (*Pipeline, error) {
	o := buildOptions(numFeatures, opts)
	return pipeline.New(pipeline.Config{Shards: o.shards, Device: o.dev})
}

// The control plane (Figure 1, §3.3.1): online retraining and live weight
// pushes over a running traffic plane, generic over the model family.
type (
	// Controller is the closed-loop control plane: drift detection,
	// background retraining, out-of-band weight pushes.
	Controller = controlplane.Controller
	// ControllerStats reports the controller's activity (windows observed,
	// drifts detected, retrains pushed).
	ControllerStats = controlplane.Stats
	// Fleet is one control plane driving N switches: a single trainer with
	// a per-member drift detector, pooling labels from the drifted members
	// and fanning one lowered graph out to every registered pipeline.
	Fleet = controlplane.Fleet
	// FleetStats reports the fleet's aggregate and per-member activity.
	FleetStats = controlplane.FleetStats
	// FleetMemberStats is one member's slice of FleetStats.
	FleetMemberStats = controlplane.MemberStats
	// LabelSource supplies freshly sampled labelled records reflecting the
	// current traffic distribution (the control plane's telemetry joined
	// with ground truth).
	LabelSource = controlplane.LabelSource
	// DriftStatistic selects the drift detector (DriftMeanShift, DriftPSI).
	DriftStatistic = controlplane.DriftStatistic

	// Deployable is one model's control-plane lifecycle: Fit on labelled
	// records, Lower against the deployed input domain, Score for
	// diagnostics, and a quantised reference decision for parity checks.
	// The Controller drives any Deployable through the same loop.
	Deployable = model.Deployable
	// DNNDeployableConfig configures NewDNNDeployable (SGD policy,
	// calibration size).
	DNNDeployableConfig = model.DNNConfig
	// SVMDeployableConfig configures NewSVMDeployable (SMO policy, deployed
	// support-set size).
	SVMDeployableConfig = model.SVMConfig
	// KMeansDeployableConfig configures NewKMeansDeployable (cluster count,
	// Lloyd iterations).
	KMeansDeployableConfig = model.KMeansConfig

	// PartialFitter is the optional Deployable extension distributed
	// retraining requires: PartialFit computes a deterministic model
	// partial from one chunk of records, Merge folds partials in
	// chunk-index order. All three Deployable families implement it.
	PartialFitter = model.PartialFitter
	// Partial is one chunk's contribution to a distributed retrain.
	Partial = model.Partial
	// DistFitConfig parameterises distributed retraining (WithDistFit):
	// worker count, chunk size (the merge schedule), task deadline,
	// checkpoint store.
	DistFitConfig = distfit.Config
	// DistFitCoordinator is the coordinator/worker retrain engine. Reach a
	// controller's live coordinator with Controller.DistFit or
	// Fleet.DistFit — the handle for fault injection (KillWorker,
	// AddWorker) and DistFitStats.
	DistFitCoordinator = distfit.Coordinator
	// DistFitStats reports a coordinator's activity: live workers,
	// completed and re-issued tasks, duplicate and dropped reports,
	// checkpoint-resumed chunks.
	DistFitStats = distfit.Stats
	// DistFitStore checkpoints a round's merged-so-far state; hand one
	// store to successive coordinators to resume interrupted rounds.
	DistFitStore = distfit.Store
)

// NewDistFitMemStore builds the in-memory checkpoint store — the Store to
// share across coordinator lifetimes when resuming matters.
var NewDistFitMemStore = distfit.NewMemStore

// ErrDistFitClosed is returned by a coordinator's Fit after Close.
var ErrDistFitClosed = distfit.ErrClosed

// Drift statistics for WithDriftStatistic.
const (
	// DriftMeanShift compares flagged-rate and mean score against the
	// reference profile (the default).
	DriftMeanShift = controlplane.DriftMeanShift
	// DriftPSI computes a population stability index over quantile-binned
	// score histograms — scale-free, and sensitive to shifts that preserve
	// the mean (variance widening, category-mix changes).
	DriftPSI = controlplane.DriftPSI
	// DriftKS computes the two-sample Kolmogorov–Smirnov distance between
	// the window's raw scores and a reference sample — scale-free like PSI,
	// but with no binning artefacts on discrete or long-tailed scores.
	DriftKS = controlplane.DriftKS
)

// Deployable constructors: model lifecycles the Controller can retrain.
var (
	// NewDNNDeployable wraps a float DNN (the Deployable takes ownership).
	NewDNNDeployable = model.NewDNN
	// NewSVMDeployable builds an RBF SVM lifecycle (trained on first Fit).
	NewSVMDeployable = model.NewSVM
	// NewKMeansDeployable builds a nearest-centroid classifier lifecycle.
	NewKMeansDeployable = model.NewKMeans
)

// controllerOptions collects the facade-level controller configuration: the
// controlplane config plus the training policy used only when NewDNNController
// constructs the Deployable for the caller.
type controllerOptions struct {
	cp  controlplane.Config
	dnn model.DNNConfig
}

// ControllerOption configures NewController and NewDNNController.
type ControllerOption func(*controllerOptions)

// WithSampleEvery samples one in n non-bypassed decisions into the drift
// windows (default 4) — the telemetry sampling rate of §5.2.3.
func WithSampleEvery(n int) ControllerOption {
	return func(o *controllerOptions) { o.cp.SampleEvery = n }
}

// WithDriftWindow sets how many sampled decisions form one observation
// window (default 512).
func WithDriftWindow(n int) ControllerOption {
	return func(o *controllerOptions) { o.cp.Window = n }
}

// WithDriftStatistic selects the drift detector: DriftMeanShift (default)
// or DriftPSI.
func WithDriftStatistic(s DriftStatistic) ControllerOption {
	return func(o *controllerOptions) { o.cp.Statistic = s }
}

// WithDriftThresholds sets the absolute flagged-rate shift and the
// mean-score shift (in output code units) that declare drift (defaults
// 0.10 and 16).
func WithDriftThresholds(flagDelta, scoreDelta float64) ControllerOption {
	return func(o *controllerOptions) {
		o.cp.FlagDelta = flagDelta
		o.cp.ScoreDelta = scoreDelta
	}
}

// WithPSIThreshold sets the population-stability-index value that declares
// drift under DriftPSI (default 0.25).
func WithPSIThreshold(t float64) ControllerOption {
	return func(o *controllerOptions) { o.cp.PSIThreshold = t }
}

// WithKSThreshold sets the two-sample Kolmogorov–Smirnov distance that
// declares drift under DriftKS (default 0.15). The same threshold is the
// calm criterion of WithAdaptiveRetrain.
func WithKSThreshold(t float64) ControllerOption {
	return func(o *controllerOptions) { o.cp.KSThreshold = t }
}

// WithAdaptiveRetrain replaces the fixed RetrainRecords collection with
// adaptive sizing: each retrain keeps collecting labelled records in chunks
// of half RetrainRecords, refitting after every chunk, until one more chunk
// no longer moves the model's score distribution (two-sample KS at most the
// KS threshold) or maxRecords is reached (0 = 4× RetrainRecords). Mild
// drift stops near the fixed budget; a hard shift keeps collecting until
// the model calms.
func WithAdaptiveRetrain(maxRecords int) ControllerOption {
	return func(o *controllerOptions) {
		o.cp.AdaptiveRetrain = true
		o.cp.RetrainMaxRecords = maxRecords
	}
}

// WithDriftPatience sets how many consecutive out-of-threshold windows
// declare drift (default 2) — hysteresis against single-window sampling
// noise.
func WithDriftPatience(n int) ControllerOption {
	return func(o *controllerOptions) { o.cp.DriftPatience = n }
}

// WithRetrainInterval makes the background worker retrain every d even
// without a drift signal (default: drift-triggered only).
func WithRetrainInterval(d time.Duration) ControllerOption {
	return func(o *controllerOptions) { o.cp.RetrainInterval = d }
}

// WithSourceDeadline bounds how long a Fleet retrain waits on any one
// member's label source: a member whose source has not returned after d is
// skipped for that retrain (its FleetMemberStats.SourceTimeouts increments)
// and its pool share is re-drawn from the members that answered, so one
// stalled source cannot stall or starve the shared loop. Default: wait
// indefinitely. Fleet pooling only.
func WithSourceDeadline(d time.Duration) ControllerOption {
	return func(o *controllerOptions) { o.cp.SourceDeadline = d }
}

// WithDistFit routes every retrain's Fit through the coordinator/worker
// distributed fit: collected records are chunked, cfg.Workers compute
// model partials concurrently, and the partials merge in deterministic
// chunk-index order, so the pushed graph stays bit-identical to a
// single-process merge over the same schedule — across worker counts,
// completion orders, stragglers and worker crashes. Requires the
// Deployable to implement PartialFitter (all three families do).
func WithDistFit(cfg DistFitConfig) ControllerOption {
	return func(o *controllerOptions) { o.cp.DistFit = &cfg }
}

// WithOnPush invokes fn after every successful weight push (a Controller's
// RetrainNow or a Fleet's fan-out). Wire it to Simulator.Push and every
// control-plane retrain becomes a simulated per-shard service stall — the
// push-under-load experiment. fn runs on the retrain path with no
// controller locks held and must not call back into the controller.
func WithOnPush(fn func()) ControllerOption {
	return func(o *controllerOptions) { o.cp.OnPush = fn }
}

// WithRetrainRecords sets how many labelled records each retrain collects
// (default 2048).
func WithRetrainRecords(n int) ControllerOption {
	return func(o *controllerOptions) { o.cp.RetrainRecords = n }
}

// WithRetrainEpochs sets how many SGD passes each retrain makes over its
// records (default 8). It configures the Deployable NewDNNController
// builds; a caller-supplied Deployable carries its own training policy.
func WithRetrainEpochs(n int) ControllerOption {
	return func(o *controllerOptions) { o.dnn.Epochs = n }
}

// WithControllerSeed seeds the SGD shuffling of NewDNNController's
// Deployable (default 1); a caller-supplied Deployable carries its own
// seed.
func WithControllerSeed(seed int64) ControllerOption {
	return func(o *controllerOptions) { o.dnn.Seed = seed }
}

func buildControllerOptions(opts []ControllerOption) controllerOptions {
	o := controllerOptions{cp: controlplane.DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// NewController builds the closed-loop controller for a pipeline: it
// retrains m — the lifecycle of the deployed model; the controller takes
// ownership — on records from src, and pushes requantised weights to every
// shard. The input domain is pinned automatically to the quantiser the
// pipeline was loaded with, so a model must be deployed (LoadModel) before
// the controller is attached.
func NewController(p *Pipeline, m Deployable, src LabelSource, opts ...ControllerOption) (*Controller, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil pipeline", ErrBadConfig)
	}
	inQ := p.InputQuantizer()
	if inQ.Scale <= 0 {
		return nil, fmt.Errorf("%w: pipeline has no deployed model; LoadModel before NewController", ErrNoModel)
	}
	o := buildControllerOptions(opts)
	if o.dnn != (model.DNNConfig{}) {
		return nil, fmt.Errorf("%w: WithRetrainEpochs/WithControllerSeed configure the Deployable NewDNNController builds; a caller-supplied Deployable carries its own training policy", ErrBadConfig)
	}
	return controlplane.New(p, m, inQ, src, o.cp)
}

// NewDNNController is the back-compatible DNN shape of NewController: it
// wraps net — the float twin of the deployed model; the controller takes
// ownership — in its Deployable lifecycle (tuned by WithRetrainEpochs /
// WithControllerSeed) and attaches it to the pipeline. inQ must be the
// quantiser the model was deployed with (LoadModel's argument).
func NewDNNController(p *Pipeline, net *DNN, inQ Quantizer, src LabelSource, opts ...ControllerOption) (*Controller, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil pipeline", ErrBadConfig)
	}
	o := buildControllerOptions(opts)
	dep, err := model.NewDNN(net, o.dnn)
	if err != nil {
		return nil, err
	}
	return controlplane.New(p, dep, inQ, src, o.cp)
}

// NewFleet builds the multi-switch control plane (§3.3.1 scaled out to a
// deployment): one trainer — the lifecycle of the deployed model m; the
// fleet takes ownership — serving N switches. Register each switch with
// fleet.Register(name, pipeline, labelSource); every member gets its own
// drift detector, and drift on any member triggers one retrain pooled from
// the drifted members' labels, pushed atomically to every switch. inQ must
// be the quantiser the members' shared deployment was loaded with (the
// pipelines' InputQuantizer after LoadModel). Tune with the same
// ControllerOptions as NewController — WithDriftStatistic(DriftKS),
// WithAdaptiveRetrain and friends.
func NewFleet(m Deployable, inQ Quantizer, opts ...ControllerOption) (*Fleet, error) {
	o := buildControllerOptions(opts)
	if o.dnn != (model.DNNConfig{}) {
		return nil, fmt.Errorf("%w: WithRetrainEpochs/WithControllerSeed configure the Deployable NewDNNController builds; a caller-supplied Deployable carries its own training policy", ErrBadConfig)
	}
	return controlplane.NewFleet(m, inQ, o.cp)
}

// Observability (internal/obs): one registry of named instruments behind
// every Stats surface, and one bounded journal of control-plane events.
type (
	// MetricsRegistry holds named instruments — counters, gauges and
	// log-linear latency histograms — under stable dotted names
	// (taurus.device.processed, taurus.pipeline.batch_packets, ...) with
	// optional key=value labels. Registration is get-or-create; hot-path
	// updates are atomic and allocation-free. Snapshot() returns every
	// instrument's current value; WriteJSON serialises the snapshot.
	MetricsRegistry = obs.Registry
	// Metric is one instrument in a registry snapshot: its name, labels,
	// kind, and value (counters/gauges) or count/sum/quantiles (histograms).
	Metric = obs.Metric
	// MetricLabel is one key=value dimension on an instrument.
	MetricLabel = obs.Label
	// TraceJournal is the bounded ring-buffer journal of control-plane
	// events: drift detections, retrain spans, graphcheck/tapecheck
	// verdicts, pushes, rollbacks, tape fallbacks, distfit rounds. Events()
	// returns the retained window oldest-first; WriteText/WriteJSON render
	// it.
	TraceJournal = obs.Tracer
	// TraceEvent is one journalled event: sequence number, span id (0 =
	// unspanned), monotonic and wall-clock timestamps, kind, detail.
	TraceEvent = obs.Event
)

// NewMetricLabel builds one key=value label for WithMetrics.
var NewMetricLabel = obs.L

// Metrics returns the process-wide default registry — the one every device,
// pipeline, controller and fleet binds to unless WithMetrics (or an explicit
// internal config) overrides it.
func Metrics() *MetricsRegistry { return obs.Default() }

// Tracer returns the process-wide default trace journal — the one every
// control plane emits to unless configured otherwise.
func Tracer() *TraceJournal { return obs.DefaultTracer() }

// NewMetricsRegistry builds a private registry for tests or multi-tenant
// embedders; pass it to components with WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceJournal builds a private trace journal retaining the last
// capacity events (0 selects the default, 4096).
func NewTraceJournal(capacity int) *TraceJournal { return obs.NewTracer(capacity) }

// MetricsHandler serves the default registry and journal over HTTP:
// GET /metrics (Prometheus text), /metrics.json, /trace (text),
// /trace.json. Mount it on any mux, or hand it straight to
// http.ListenAndServe.
func MetricsHandler() http.Handler { return obs.Handler(obs.Default(), obs.DefaultTracer()) }

// The queueing plane: continuous-time simulation of a deployed traffic
// plane under an arrival process — the composition of the throughput story
// (per-shard service at II ns per packet) with the drift story (retrain
// pushes as simulated stalls).
type (
	// Simulator is the discrete-event queueing simulator: flow-hashed
	// arrivals into per-shard finite FIFO queues served at the deployed
	// model's measured occupancy. Drive it with RunPackets/Drain, inject
	// weight pushes with Push, and read p50/p99/p999 transit latency,
	// queue depths and drops from Stats.
	Simulator = netqueue.Simulator
	// SimResult is one measurement interval's metrics.
	SimResult = netqueue.Result
	// ArrivalProcess generates the simulator's packet arrivals.
	ArrivalProcess = netqueue.ArrivalProcess
	// SimPacket is one simulated arrival (flow hash plus ground-truth
	// label when replayed from a labelled stream).
	SimPacket = netqueue.Packet
	// OnOffArrivalConfig parameterises the bursty on/off arrival process.
	OnOffArrivalConfig = netqueue.OnOffConfig
	// ServiceModel is a pipeline's per-shard service-time model
	// (Pipeline.ServiceModel), the hook the simulator runs on.
	ServiceModel = pipeline.ServiceModel
)

// Arrival-process constructors.
var (
	// NewPoissonArrivals builds memoryless arrivals at a fixed rate.
	NewPoissonArrivals = netqueue.NewPoisson
	// NewOnOffArrivals builds a two-state bursty MMPP source.
	NewOnOffArrivals = netqueue.NewOnOff
	// NewReplayArrivals replays a DriftingStream — labels intact — with
	// Poisson timing at a configured rate.
	NewReplayArrivals = netqueue.NewReplay
)

// SimOption configures NewSimulator and MaxSustainableLoad.
type SimOption func(*netqueue.Config)

// WithQueueCapacity sets each shard's waiting-room capacity in packets
// (default 512); arrivals that find the queue full are dropped.
func WithQueueCapacity(n int) SimOption {
	return func(c *netqueue.Config) { c.QueueCap = n }
}

// WithPushStall sets how long a weight push pauses each shard's service
// (default 10µs) — the out-of-band weight-write window. WithPushStall(0)
// makes pushes free.
func WithPushStall(d time.Duration) SimOption {
	return func(c *netqueue.Config) { c.PushStallNs = float64(d.Nanoseconds()) }
}

// simConfig derives the simulator configuration from a deployed pipeline.
func simConfig(p *Pipeline, opts []SimOption) (netqueue.Config, error) {
	if p == nil {
		return netqueue.Config{}, fmt.Errorf("%w: nil pipeline", ErrBadConfig)
	}
	svc := p.ServiceModel()
	if svc.MLServiceNs <= 0 {
		return netqueue.Config{}, fmt.Errorf("%w: pipeline has no deployed model; LoadModel before simulating", ErrNoModel)
	}
	// Seed the conventional push cost; WithPushStall (including an explicit
	// 0 for free pushes) overrides it.
	cfg := netqueue.Config{Service: svc, PushStallNs: netqueue.DefaultPushStallNs}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg, nil
}

// NewSimulator builds the continuous-time queueing simulator over p's
// measured service model (a model must be deployed with LoadModel first),
// fed by arr. The simulated timeline is continuous across RunPackets
// calls; pair Stats with ResetStats for windowed measurements, and wire a
// controller's WithOnPush to Push to make retrain pushes simulated events.
func NewSimulator(p *Pipeline, arr ArrivalProcess, opts ...SimOption) (*Simulator, error) {
	cfg, err := simConfig(p, opts)
	if err != nil {
		return nil, err
	}
	return netqueue.New(cfg, arr)
}

// MaxSustainableLoad binary-searches the highest offered rate (packets/sec)
// p's deployment sustains with a drop fraction at most maxDropFrac, under
// the arrival shape mk builds per probed rate — the shard-count-sizing
// question ("how many shards for this SLO?") answered by simulation.
func MaxSustainableLoad(p *Pipeline, mk func(pps float64) (ArrivalProcess, error), packets int, maxDropFrac float64, opts ...SimOption) (float64, error) {
	cfg, err := simConfig(p, opts)
	if err != nil {
		return 0, err
	}
	return netqueue.MaxSustainablePPS(cfg, mk, packets, maxDropFrac)
}

// Machine-learning models (§5.1.2) and quantisation (Table 3).
type (
	// DNN is a float feed-forward network (control-plane training).
	DNN = ml.DNN
	// QuantizedDNN is its 8-bit data-plane counterpart.
	QuantizedDNN = ml.QuantizedDNN
	// SVM is an RBF support-vector machine.
	SVM = ml.SVM
	// KMeans is a nearest-centroid classifier.
	KMeans = ml.KMeans
	// LSTM is the Indigo-style congestion-control model.
	LSTM = ml.LSTM
	// Quantizer maps floats to symmetric int8.
	Quantizer = fixed.Quantizer
	// Vec is a dense float32 feature vector.
	Vec = tensor.Vec
)

// Lowerings: trained model -> MapReduce program.
var (
	// LowerDNN lowers a quantised DNN (bit-exact with QuantizedDNN).
	LowerDNN = lower.DNN
	// LowerKMeans lowers nearest-centroid classification.
	LowerKMeans = lower.KMeans
	// LowerSVM lowers an RBF SVM with a kernel lookup table.
	LowerSVM = lower.SVM
	// LowerLSTMStep lowers one recurrent step of an LSTM.
	LowerLSTMStep = lower.LSTMStep
	// NewSVMReference builds a reusable evaluator of the lowered SVM's
	// exact quantised arithmetic (bit-identical to the graph, no graph
	// interpretation) — the control plane's parity checker.
	NewSVMReference = lower.NewSVMReference
)

// SVMReference evaluates the lowered SVM's quantised decision directly.
type SVMReference = lower.SVMReference

// Synthetic workloads (§5.2.2 substitutes for NSL-KDD and TMC IoT traces).
type (
	// AnomalyConfig parameterises the KDD-like generator.
	AnomalyConfig = dataset.AnomalyConfig
	// AnomalyGenerator produces labelled connection records.
	AnomalyGenerator = dataset.AnomalyGenerator
	// IoTConfig parameterises the IoT traffic generator.
	IoTConfig = dataset.IoTConfig
	// IoTGenerator produces labelled IoT samples.
	IoTGenerator = dataset.IoTGenerator
	// Record is one labelled connection.
	Record = dataset.Record
	// DriftConfig parameterises the concept-drifting anomaly workload.
	DriftConfig = dataset.DriftConfig
	// DriftingGenerator produces records whose distribution interpolates
	// between the base world (phase 0) and a drifted one (phase 1).
	DriftingGenerator = dataset.DriftingGenerator
	// DriftingStream produces labelled packet batches over a flow working
	// set whose feature distributions drift with the stream's phase, plus
	// the label feed a Controller retrains on.
	DriftingStream = trafficgen.DriftingStream
	// IoTDriftConfig parameterises the drifting IoT classification
	// workload (class centres migrate; the category mix skews).
	IoTDriftConfig = dataset.IoTDriftConfig
	// DriftingIoTGenerator produces drifting labelled IoT samples.
	DriftingIoTGenerator = dataset.DriftingIoTGenerator
	// DriftSource is the workload contract a DriftingStream drives; both
	// drifting generators satisfy it.
	DriftSource = trafficgen.DriftSource
	// StreamOption configures drifting streams (label delay/noise).
	StreamOption = trafficgen.StreamOption
)

// Dataset constructors and helpers.
var (
	// NewAnomalyGenerator builds a KDD-like generator.
	NewAnomalyGenerator = dataset.NewAnomalyGenerator
	// DefaultAnomalyConfig is calibrated to the paper's F1 operating point.
	DefaultAnomalyConfig = dataset.DefaultAnomalyConfig
	// NewIoTGenerator builds an IoT traffic generator.
	NewIoTGenerator = dataset.NewIoTGenerator
	// DefaultIoTConfig is the Table 3 configuration.
	DefaultIoTConfig = dataset.DefaultIoTConfig
	// KMeansIoTConfig is the Table 5 KMeans configuration.
	KMeansIoTConfig = dataset.KMeansIoTConfig
	// SplitRecords converts records to (X, y) with y=1 for anomalies.
	SplitRecords = dataset.Split
	// NewDriftingGenerator builds a concept-drifting record generator.
	NewDriftingGenerator = dataset.NewDriftingGenerator
	// DefaultDriftConfig is the calibrated drifting workload.
	DefaultDriftConfig = dataset.DefaultDriftConfig
	// NewDriftingStream builds drifting packet traffic over n flows.
	NewDriftingStream = trafficgen.NewDriftingStream
	// NewDriftingStreams builds n independently seeded member streams of
	// the same drifting workload — one per fleet switch, each seeing its
	// own traffic mix on its own phase schedule.
	NewDriftingStreams = trafficgen.NewDriftingStreams
	// DefaultIoTDriftConfig is the calibrated drifting IoT workload.
	DefaultIoTDriftConfig = dataset.DefaultIoTDriftConfig
	// NewDriftingIoTGenerator builds a drifting IoT record generator.
	NewDriftingIoTGenerator = dataset.NewDriftingIoTGenerator
	// NewDriftingIoTStream builds drifting IoT packet traffic over n flows.
	NewDriftingIoTStream = trafficgen.NewDriftingIoTStream
	// NewDriftingStreamFrom builds a stream over caller-supplied traffic
	// and label DriftSources.
	NewDriftingStreamFrom = trafficgen.NewDriftingStreamFrom
	// WithLabelDelay makes the stream's label feed lag the traffic by n
	// SetPhase steps — the controller trains on stale ground truth.
	WithLabelDelay = trafficgen.WithLabelDelay
	// WithLabelNoise mislabels each labelled record with probability p.
	WithLabelNoise = trafficgen.WithLabelNoise
	// WithLabelClasses declares a k-category workload so label noise draws
	// random wrong categories instead of the binary flip.
	WithLabelClasses = trafficgen.WithLabelClasses
)

// Training helpers and metrics.
type (
	// SGDConfig controls DNN training.
	SGDConfig = ml.SGDConfig
	// Trainer performs minibatch SGD on a DNN.
	Trainer = ml.Trainer
	// BinaryConfusion tallies binary classifier outcomes (F1, precision,
	// recall — §5.2.2's scores).
	BinaryConfusion = ml.BinaryConfusion
	// MultiConfusion tallies k-class outcomes with per-class and macro F1 —
	// the scorer for the IoT classifiers.
	MultiConfusion = ml.MultiConfusion
)

// Model constructors.
var (
	// NewDNN builds a float feed-forward network.
	NewDNN = ml.NewDNN
	// NewTrainer wires a trainer to a DNN.
	NewTrainer = ml.NewTrainer
	// QuantizeDNN converts a trained DNN to 8-bit (Table 3's scheme).
	QuantizeDNN = ml.Quantize
	// QuantizeDNNWithInput quantises against a pinned input quantiser —
	// what a Controller does when requantising a retrained model for a
	// data plane whose preprocessing MATs keep their deployment-time
	// quantiser.
	QuantizeDNNWithInput = ml.QuantizeWithInput
	// TrainKMeans runs k-means++ plus Lloyd iterations.
	TrainKMeans = ml.TrainKMeans
	// TrainSVM fits an RBF SVM with SMO.
	TrainSVM = ml.TrainSVM
	// NewLSTM builds an Indigo-style LSTM.
	NewLSTM = ml.NewLSTM
	// NewQuantizer builds a symmetric int8 quantiser for [-absMax, absMax].
	NewQuantizer = fixed.NewQuantizer
	// QuantizerFor calibrates a quantiser from observed values.
	QuantizerFor = fixed.QuantizerFor
	// InputQuantizerFor calibrates the data plane's input quantiser from a
	// deployment-time record sample (the quantiser to pass to LoadModel).
	InputQuantizerFor = model.InputQuantizerFor
)

// Activations.
const (
	// ReLU is max(0, x).
	ReLU = ml.ReLU
	// LeakyReLU is x for x>=0 and 0.01x otherwise.
	LeakyReLU = ml.LeakyReLU
	// Sigmoid is the logistic function.
	Sigmoid = ml.Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh = ml.Tanh
	// LinearAct applies no non-linearity.
	LinearAct = ml.Linear
)

// BuildTCPPacket serialises a minimal Ethernet+IPv4+TCP packet for
// Device.Process and Pipeline batches.
var BuildTCPPacket = pisa.BuildTCPPacket
